"""Learning-rate schedules with checkpointable state.

Exact resume requires more than weights and optimizer moments: if the
learning rate follows a schedule, the schedule's position must be part
of the checkpoint too, or the resumed run silently trains with the wrong
LR and diverges from the uninterrupted reference.  Schedules here expose
``state_dict``/``load_state_dict`` like the optimizers, and the trainer
steps them once per iteration.
"""

from __future__ import annotations

import math
from typing import Dict

import numpy as np

from repro.errors import TrainingError
from repro.training.optim import Optimizer


class LRScheduler:
    """Base scheduler: owns the optimizer's ``lr`` from now on."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.steps = 0

    def step(self) -> float:
        """Advance one iteration; returns the LR now in effect."""
        self.steps += 1
        lr = self.lr_at(self.steps)
        if lr <= 0:
            raise TrainingError(f"schedule produced non-positive LR {lr}")
        self.optimizer.lr = lr
        return lr

    def lr_at(self, step: int) -> float:
        """The schedule function (must be overridden)."""
        raise NotImplementedError

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Schedule position + base LR, as checkpointable tensors."""
        return {
            "steps": np.array([self.steps], dtype=np.int64),
            "base_lr": np.array([self.base_lr], dtype=np.float64),
        }

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore and immediately re-apply the scheduled LR."""
        if "steps" not in state or "base_lr" not in state:
            raise TrainingError("scheduler state missing steps/base_lr")
        self.steps = int(state["steps"][0])
        self.base_lr = float(state["base_lr"][0])
        if self.steps > 0:
            self.optimizer.lr = self.lr_at(self.steps)


class WarmupCosineSchedule(LRScheduler):
    """Linear warmup to ``base_lr``, then cosine decay to ``min_lr``.

    The schedule used (in spirit) by the OPT/BLOOM training runs the
    paper checkpoints.
    """

    def __init__(
        self,
        optimizer: Optimizer,
        warmup_steps: int,
        total_steps: int,
        min_lr_fraction: float = 0.1,
    ) -> None:
        super().__init__(optimizer)
        if warmup_steps < 0 or total_steps <= 0:
            raise TrainingError("invalid warmup/total step counts")
        if warmup_steps >= total_steps:
            raise TrainingError("warmup must end before training does")
        if not 0.0 < min_lr_fraction <= 1.0:
            raise TrainingError(
                f"min LR fraction must be in (0, 1], got {min_lr_fraction}"
            )
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps
        self.min_lr_fraction = min_lr_fraction

    def lr_at(self, step: int) -> float:
        if self.warmup_steps and step <= self.warmup_steps:
            return self.base_lr * step / self.warmup_steps
        progress = min(
            1.0,
            (step - self.warmup_steps)
            / max(1, self.total_steps - self.warmup_steps),
        )
        floor = self.base_lr * self.min_lr_fraction
        return floor + 0.5 * (self.base_lr - floor) * (
            1.0 + math.cos(math.pi * progress)
        )


class StepDecaySchedule(LRScheduler):
    """Multiply the LR by ``gamma`` every ``every`` steps (VGG-style)."""

    def __init__(self, optimizer: Optimizer, every: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if every < 1:
            raise TrainingError(f"decay period must be >= 1, got {every}")
        if not 0.0 < gamma <= 1.0:
            raise TrainingError(f"gamma must be in (0, 1], got {gamma}")
        self.every = every
        self.gamma = gamma

    def lr_at(self, step: int) -> float:
        return self.base_lr * self.gamma ** (step // self.every)
