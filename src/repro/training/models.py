"""Model zoo: scaled-down stand-ins for the paper's Table 3 models.

The paper trains VGG16, BERT, TransformerXL, OPT-{350M,1.3B,2.7B} and
BLOOM-7B.  The *functional* experiments in this repo only need models
whose state the checkpoint engine can snapshot and restore — so the zoo
provides the same three architecture families at laptop scale:

* :class:`MLP` — the minimal smoke-test model;
* :class:`MiniVGG` — conv/pool blocks + classifier (the VGG16 family);
* :class:`TransformerLM` — embeddings + transformer blocks + LM head,
  with ``causal=True`` for the OPT/BLOOM decoder family and ``False``
  for the BERT encoder family.

Performance numbers for the *full-size* models come from the calibrated
simulator's workload catalog (:mod:`repro.sim.workloads`), not from these
miniatures.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.errors import TrainingError
from repro.training.attention import TransformerBlock
from repro.training.layers import (
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)
from repro.training.module import Module


class MLP(Module):
    """Fully connected network with ReLU activations."""

    def __init__(self, sizes, rng: np.random.Generator) -> None:
        super().__init__()
        if len(sizes) < 2:
            raise TrainingError("MLP needs at least input and output sizes")
        layers = []
        for index, (fan_in, fan_out) in enumerate(zip(sizes, sizes[1:])):
            layers.append(Linear(fan_in, fan_out, rng))
            if index < len(sizes) - 2:
                layers.append(ReLU())
        self.net = Sequential(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.net(x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.net.backward(grad_output)


class MiniVGG(Module):
    """VGG-style convnet: (Conv-ReLU ×2 → MaxPool) blocks + MLP head.

    Defaults assume 16×16 inputs so two pool stages leave a 4×4 map.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        in_channels: int = 3,
        num_classes: int = 10,
        width: int = 16,
        image_size: int = 16,
    ) -> None:
        super().__init__()
        if image_size % 4:
            raise TrainingError("image size must be divisible by 4 (two pools)")
        self.features = Sequential(
            [
                Conv2d(in_channels, width, 3, rng),
                ReLU(),
                Conv2d(width, width, 3, rng),
                ReLU(),
                MaxPool2d(2),
                Conv2d(width, 2 * width, 3, rng),
                ReLU(),
                Conv2d(2 * width, 2 * width, 3, rng),
                ReLU(),
                MaxPool2d(2),
            ]
        )
        feature_dim = 2 * width * (image_size // 4) ** 2
        self.classifier = Sequential(
            [Flatten(), Linear(feature_dim, 4 * width, rng), ReLU(),
             Linear(4 * width, num_classes, rng)]
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.classifier(self.features(x))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.features.backward(self.classifier.backward(grad_output))


class TransformerLM(Module):
    """Transformer language model (decoder when ``causal=True``)."""

    def __init__(
        self,
        rng: np.random.Generator,
        vocab_size: int = 256,
        dim: int = 64,
        num_heads: int = 4,
        num_layers: int = 2,
        max_seq: int = 64,
        causal: bool = True,
    ) -> None:
        super().__init__()
        from repro.training.layers import Embedding, LayerNorm

        self.token_embed = Embedding(vocab_size, dim, rng)
        self.pos_embed = Embedding(max_seq, dim, rng)
        self.blocks = [
            TransformerBlock(dim, num_heads, rng, causal=causal)
            for _ in range(num_layers)
        ]
        self.final_norm = LayerNorm(dim)
        self.lm_head = Linear(dim, vocab_size, rng)
        self.max_seq = max_seq
        self.causal = causal

    def forward(self, ids: np.ndarray) -> np.ndarray:
        batch, seq = ids.shape
        if seq > self.max_seq:
            raise TrainingError(f"sequence length {seq} exceeds max {self.max_seq}")
        positions = np.broadcast_to(np.arange(seq), (batch, seq))
        x = self.token_embed(ids) + self.pos_embed(np.ascontiguousarray(positions))
        for block in self.blocks:
            x = block(x)
        return self.lm_head(self.final_norm(x))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self.final_norm.backward(self.lm_head.backward(grad_output))
        for block in reversed(self.blocks):
            grad = block.backward(grad)
        self.pos_embed.backward(grad)
        return self.token_embed.backward(grad)


#: Factories for the Table 3 stand-ins, keyed by the paper's model names.
ModelFactory = Callable[[np.random.Generator], Module]

MODEL_ZOO: Dict[str, ModelFactory] = {
    "vgg16": lambda rng: MiniVGG(rng, width=16),
    "bert": lambda rng: TransformerLM(
        rng, dim=64, num_heads=4, num_layers=3, causal=False
    ),
    "transformer_xl": lambda rng: TransformerLM(
        rng, dim=64, num_heads=4, num_layers=2, causal=True
    ),
    "opt_350m": lambda rng: TransformerLM(
        rng, dim=48, num_heads=4, num_layers=2, causal=True
    ),
    "opt_1_3b": lambda rng: TransformerLM(
        rng, dim=64, num_heads=4, num_layers=4, causal=True
    ),
    "mlp": lambda rng: MLP([32, 64, 32, 10], rng),
}


def build_model(name: str, seed: int = 0, rng: Optional[np.random.Generator] = None) -> Module:
    """Instantiate a zoo model by its paper name."""
    try:
        factory = MODEL_ZOO[name]
    except KeyError:
        raise TrainingError(
            f"unknown model {name!r}; available: {sorted(MODEL_ZOO)}"
        ) from None
    return factory(rng if rng is not None else np.random.default_rng(seed))
