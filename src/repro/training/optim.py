"""Optimizers with checkpointable state.

A checkpoint in the paper always includes model **and optimizer** state
(Table 3's sizes are dominated by Adam moments for the LLMs).  Each
optimizer here exposes ``state_dict()`` / ``load_state_dict()`` covering
its internal buffers, so a restored run continues bit-exactly.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.errors import TrainingError
from repro.training.module import Module, Parameter


class Optimizer:
    """Base optimizer over a module's named parameters."""

    def __init__(self, module: Module, lr: float) -> None:
        if lr <= 0:
            raise TrainingError(f"learning rate must be positive, got {lr}")
        self._named = list(module.named_parameters())
        if not self._named:
            raise TrainingError("module has no parameters to optimize")
        self.lr = lr
        self.steps = 0

    @property
    def parameters(self) -> List[Parameter]:
        """Parameters in traversal order."""
        return [param for _, param in self._named]

    def zero_grad(self) -> None:
        """Clear every parameter's gradient."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        raise NotImplementedError

    def state_dict(self) -> Dict[str, np.ndarray]:
        """All optimizer buffers, keyed by ``<buffer>/<param-name>``."""
        raise NotImplementedError

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore buffers from :meth:`state_dict` output."""
        raise NotImplementedError

    def state_nbytes(self) -> int:
        """Bytes of optimizer state (counted into checkpoint size)."""
        return sum(value.nbytes for value in self.state_dict().values())

    def _check_keys(self, state: Dict[str, np.ndarray], expected) -> None:
        if set(state) != set(expected):
            raise TrainingError(
                f"optimizer state mismatch: missing="
                f"{sorted(set(expected) - set(state))}, unexpected="
                f"{sorted(set(state) - set(expected))}"
            )


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, module: Module, lr: float = 0.01, momentum: float = 0.0) -> None:
        super().__init__(module, lr)
        if not 0.0 <= momentum < 1.0:
            raise TrainingError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity = {
            name: np.zeros_like(param.data) for name, param in self._named
        }

    def step(self) -> None:
        for name, param in self._named:
            if self.momentum:
                velocity = self._velocity[name]
                velocity *= self.momentum
                velocity += param.grad
                param.data -= self.lr * velocity
            else:
                param.data -= self.lr * param.grad
        self.steps += 1

    def state_dict(self) -> Dict[str, np.ndarray]:
        state = {f"velocity/{name}": v.copy() for name, v in self._velocity.items()}
        state["steps"] = np.array([self.steps], dtype=np.int64)
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        expected = [f"velocity/{name}" for name in self._velocity] + ["steps"]
        self._check_keys(state, expected)
        for name in self._velocity:
            self._velocity[name][...] = state[f"velocity/{name}"]
        self.steps = int(state["steps"][0])


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        module: Module,
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(module, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise TrainingError(f"betas must be in [0, 1), got {betas}")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = {name: np.zeros_like(p.data) for name, p in self._named}
        self._v = {name: np.zeros_like(p.data) for name, p in self._named}

    def step(self) -> None:
        self.steps += 1
        bias1 = 1.0 - self.beta1**self.steps
        bias2 = 1.0 - self.beta2**self.steps
        for name, param in self._named:
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m = self._m[name]
            v = self._v[name]
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for name in self._m:
            state[f"exp_avg/{name}"] = self._m[name].copy()
            state[f"exp_avg_sq/{name}"] = self._v[name].copy()
        state["steps"] = np.array([self.steps], dtype=np.int64)
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        expected = (
            [f"exp_avg/{name}" for name in self._m]
            + [f"exp_avg_sq/{name}" for name in self._v]
            + ["steps"]
        )
        self._check_keys(state, expected)
        for name in self._m:
            self._m[name][...] = state[f"exp_avg/{name}"]
            self._v[name][...] = state[f"exp_avg_sq/{name}"]
        self.steps = int(state["steps"][0])


class AdamW(Adam):
    """Adam with decoupled weight decay (the LLM-training default)."""

    def __init__(
        self,
        module: Module,
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.01,
    ) -> None:
        super().__init__(module, lr, betas, eps, weight_decay=0.0)
        self.decoupled_decay = weight_decay

    def step(self) -> None:
        if self.decoupled_decay:
            for _, param in self._named:
                param.data *= 1.0 - self.lr * self.decoupled_decay
        super().step()
