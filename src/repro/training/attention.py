"""Multi-head self-attention and the transformer block.

Backbone for the BERT / TransformerXL / OPT / BLOOM stand-ins in the
model zoo.  Forward and backward are written out explicitly (no autograd
framework), with the standard softmax-Jacobian trick for the attention
weights.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import TrainingError
from repro.training.layers import GELU, Dropout, LayerNorm, Linear
from repro.training.module import Module


def _softmax(x: np.ndarray) -> np.ndarray:
    shifted = x - x.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


class MultiHeadSelfAttention(Module):
    """Scaled dot-product self-attention with ``num_heads`` heads.

    Input/output shape ``(batch, seq, dim)``.  ``causal=True`` applies the
    autoregressive mask used by the OPT/BLOOM-style language models;
    ``False`` gives the bidirectional attention of the BERT stand-in.
    """

    def __init__(
        self,
        dim: int,
        num_heads: int,
        rng: np.random.Generator,
        causal: bool = False,
    ) -> None:
        super().__init__()
        if dim % num_heads:
            raise TrainingError(f"dim {dim} not divisible by {num_heads} heads")
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.causal = causal
        self.qkv = Linear(dim, 3 * dim, rng)
        self.proj = Linear(dim, dim, rng)
        self._cache = None

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        batch, seq, _ = x.shape
        return x.reshape(batch, seq, self.num_heads, self.head_dim).transpose(
            0, 2, 1, 3
        )

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        batch, heads, seq, head_dim = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, seq, heads * head_dim)

    def forward(self, x: np.ndarray) -> np.ndarray:
        qkv = self.qkv(x)
        q, k, v = np.split(qkv, 3, axis=-1)
        q, k, v = map(self._split_heads, (q, k, v))
        scale = 1.0 / np.sqrt(self.head_dim)
        scores = (q @ k.transpose(0, 1, 3, 2)) * scale
        if self.causal:
            seq = scores.shape[-1]
            mask = np.triu(np.ones((seq, seq), dtype=bool), k=1)
            scores = np.where(mask, np.float32(-1e9), scores)
        weights = _softmax(scores)
        context = weights @ v
        self._cache = (q, k, v, weights, scale)
        return self.proj(self._merge_heads(context))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise TrainingError("backward before forward in attention")
        q, k, v, weights, scale = self._cache
        grad_context = self._split_heads(self.proj.backward(grad_output))
        grad_weights = grad_context @ v.transpose(0, 1, 3, 2)
        grad_v = weights.transpose(0, 1, 3, 2) @ grad_context
        # Softmax Jacobian: dS = W * (dW - sum(dW * W)).
        inner = (grad_weights * weights).sum(axis=-1, keepdims=True)
        grad_scores = weights * (grad_weights - inner)
        grad_scores *= scale
        grad_q = grad_scores @ k
        grad_k = grad_scores.transpose(0, 1, 3, 2) @ q
        grad_qkv = np.concatenate(
            [self._merge_heads(g) for g in (grad_q, grad_k, grad_v)], axis=-1
        )
        return self.qkv.backward(grad_qkv)


class FeedForward(Module):
    """Position-wise MLP: Linear → GELU → Linear."""

    def __init__(
        self, dim: int, hidden: int, rng: np.random.Generator
    ) -> None:
        super().__init__()
        self.up = Linear(dim, hidden, rng)
        self.act = GELU()
        self.down = Linear(hidden, dim, rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.down(self.act(self.up(x)))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.up.backward(self.act.backward(self.down.backward(grad_output)))


class TransformerBlock(Module):
    """Pre-norm transformer block: LN → MHSA → residual, LN → FF → residual."""

    def __init__(
        self,
        dim: int,
        num_heads: int,
        rng: np.random.Generator,
        ff_multiplier: int = 4,
        causal: bool = False,
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        self.norm1 = LayerNorm(dim)
        self.attn = MultiHeadSelfAttention(dim, num_heads, rng, causal=causal)
        self.norm2 = LayerNorm(dim)
        self.ff = FeedForward(dim, ff_multiplier * dim, rng)
        self.drop: Optional[Dropout] = (
            Dropout(dropout, rng) if dropout > 0.0 else None
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        attn_out = self.attn(self.norm1(x))
        if self.drop is not None:
            attn_out = self.drop(attn_out)
        x = x + attn_out
        return x + self.ff(self.norm2(x))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_ff = self.norm2.backward(self.ff.backward(grad_output))
        grad_mid = grad_output + grad_ff
        grad_attn = grad_mid
        if self.drop is not None:
            grad_attn = self.drop.backward(grad_attn)
        grad_in = self.norm1.backward(self.attn.backward(grad_attn))
        return grad_mid + grad_in
