"""PCcheck reproduction — persistent concurrent checkpointing for ML.

A from-scratch Python implementation of *PCcheck: Persistent Concurrent
Checkpointing for ML* (Strati, Friedman, Klimovic — ASPLOS 2025), with:

* :mod:`repro.core` — the concurrent checkpoint engine (Listing 1),
  orchestrator, recovery, auto-tuning, and distributed coordination;
* :mod:`repro.storage` — SSD/PMEM/GPU/DRAM substrates with crash
  injection;
* :mod:`repro.training` — a miniature pure-numpy DNN training stack whose
  model+optimizer state the engine checkpoints;
* :mod:`repro.baselines` — functional CheckFreq / GPM / naive strategies;
* :mod:`repro.sim` — a calibrated discrete-event performance simulator
  that regenerates every figure in the paper's evaluation;
* :mod:`repro.analysis` — experiment runners, tables, and CSV output.

Quickstart::

    from repro import open_checkpointer
    with open_checkpointer("/tmp/ckpt.pc", capacity_bytes=1 << 20,
                           num_concurrent=2) as ckpt:
        ckpt.checkpoint(b"model state", step=1)
        print(ckpt.latest().step)       # -> 1
        print(ckpt.metrics("prometheus"))

All keyword knobs of :func:`repro.open_checkpointer` — ``backend=``
("ssd"/"pmem"/"faults") and ``observability=`` ("off"/"metrics"/"full")
among them — are documented on the function.  ``CheckpointerHandle`` is
the deprecated pre-redesign name of :class:`Checkpointer`.

Multi-tenant checkpointing lives in :mod:`repro.service`: an explicit
:class:`~repro.service.EnginePool` (the one place engine stacks are
assembled — ``open_checkpointer`` is a one-tenant view over it) and a
:class:`~repro.service.CheckpointService` with per-tenant quotas,
admission control, and cross-tenant group commit::

    from repro import CheckpointService, EngineSpec, TenantSpec
    svc = CheckpointService.create(
        EngineSpec(capacity_bytes=1 << 20, backend="pmem"), pool_size=2)
    svc.register(TenantSpec(name="job-a", capacity_bytes=1 << 20, slots=2))
    svc.checkpoint("job-a", b"model state", step=1)
    svc.close()
"""

from repro._api import Checkpointer, CheckpointerHandle, open_checkpointer
from repro.errors import (
    AdmissionRejected,
    ConfigError,
    CorruptCheckpointError,
    EngineError,
    NoCheckpointError,
    PCcheckError,
    RemoteUnavailableError,
    ServiceError,
    ServiceSaturated,
    StorageError,
)
from repro.service import (
    CheckpointService,
    EngineLease,
    EnginePool,
    EngineSpec,
    TenantSpec,
)
from repro.storage.remote import RemoteStore
from repro.storage.tiering import TieredDevice, TierPlan, TierPolicy

__version__ = "1.0.0"

__all__ = [
    "AdmissionRejected",
    "Checkpointer",
    "CheckpointerHandle",
    "CheckpointService",
    "ConfigError",
    "CorruptCheckpointError",
    "EngineError",
    "EngineLease",
    "EnginePool",
    "EngineSpec",
    "NoCheckpointError",
    "PCcheckError",
    "RemoteStore",
    "RemoteUnavailableError",
    "ServiceError",
    "ServiceSaturated",
    "StorageError",
    "TenantSpec",
    "TieredDevice",
    "TierPlan",
    "TierPolicy",
    "__version__",
    "open_checkpointer",
]
