"""Simulated persistent main memory (PMEM).

The paper evaluates PCcheck on Intel Optane DC persistent memory, persisted
either with non-temporal stores followed by ``sfence`` (4.01 GB/s on their
machine) or with ``clwb`` write-backs followed by a fence (2.46 GB/s).
Optane is discontinued and absent here, so this module models the part of
the hardware that the *algorithm's correctness* depends on: the persistence
domain and its failure atomicity.

Model
-----
The device keeps two byte images:

``visible``
    What loads observe — the CPU cache view.  Every store (cached or
    non-temporal) updates it immediately.

``durable``
    What survives :meth:`crash` — media content.  Bytes move from
    ``visible`` to ``durable`` only when ordered to: ``sfence`` drains
    outstanding non-temporal stores, and ``clwb`` + fence (or the generic
    :meth:`persist` barrier) writes back dirty cached lines.

``crash(rng=...)`` freezes the device.  Unpersisted data is *partially and
randomly* applied at cache-line (64 B) granularity, reproducing the
reordering hazard the paper describes: "the order in which data is written
to the cache may differ from the order in which the content reaches PMEM,
leading to inconsistent states upon a failure" (§2.3).  Durability tests
inject crashes at arbitrary points and assert the recovery invariant.

Bandwidth
---------
An optional ``persist_bandwidth`` (bytes/second) makes durability barriers
take real wall-clock time so functional benchmarks reflect the nt-store vs
clwb asymmetry.  It defaults to ``None`` (instantaneous) for unit tests.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

import numpy as np

from repro.errors import CrashedDeviceError, StorageError
from repro.storage.device import (
    Buffer,
    DeviceStats,
    IntervalSet,
    PersistentDevice,
    as_view,
    split_cache_lines,
)

#: Measured on the paper's PMEM machine (§3.3): non-temporal store + sfence.
NT_STORE_BANDWIDTH: float = 4.01e9
#: Measured on the paper's PMEM machine (§3.3): clwb + fence.
CLWB_BANDWIDTH: float = 2.46e9


class SimulatedPMEM(PersistentDevice):
    """Byte-addressable persistent memory with an explicit persistence domain.

    Thread-safe: the checkpoint engine persists with multiple writer
    threads, each covering a disjoint range, and all of them may fence
    concurrently.
    """

    def __init__(
        self,
        capacity: int,
        name: str = "pmem",
        persist_bandwidth: Optional[float] = None,
        use_nt_stores: bool = True,
    ) -> None:
        super().__init__(capacity, name)
        self._visible = bytearray(capacity)
        self._durable = bytearray(capacity)
        self._dirty = IntervalSet()  # cached stores not yet written back
        self._pending_nt = IntervalSet()  # nt stores not yet fenced
        self._flush_queued = IntervalSet()  # clwb issued, fence pending
        self._lock = threading.RLock()
        self._crashed = False
        self._persist_bandwidth = persist_bandwidth
        self._use_nt_stores = use_nt_stores
        self.stats = DeviceStats()

    # ------------------------------------------------------------------
    # state checks

    def _check_alive(self) -> None:
        self._check_open()
        if self._crashed:
            raise CrashedDeviceError(f"{self.name} has crashed; call recover()")

    @property
    def crashed(self) -> bool:
        """True between :meth:`crash` and :meth:`recover`."""
        return self._crashed

    @property
    def unpersisted_bytes(self) -> int:
        """Bytes currently at risk (dirty + pending nt stores)."""
        with self._lock:
            return self._dirty.total_bytes() + self._pending_nt.total_bytes()

    # ------------------------------------------------------------------
    # store paths

    def write(self, offset: int, data: Buffer) -> None:
        """Default store path: nt-store when enabled, else cached store.

        PCcheck writes checkpoint payloads exactly once without reading
        them back, so the paper picks the non-temporal path (§3.3); this
        device mirrors that default while still exposing both primitives.
        """
        if self._use_nt_stores:
            self.nt_store(offset, data)
        else:
            self.cached_store(offset, data)

    def cached_store(self, offset: int, data: Buffer) -> None:
        """A regular (write-back cached) store; durable only after
        ``clwb`` + fence covers it."""
        self._check_alive()
        view = as_view(data)
        length = len(view)
        self._check_range(offset, length)
        start = self._obs_start()
        with self._lock:
            self._visible[offset : offset + length] = view
            self._dirty.add(offset, offset + length)
            self.stats.bytes_written += length
            self.stats.write_ops += 1
        self._obs_op("write", length, start)

    def nt_store(self, offset: int, data: Buffer) -> None:
        """A non-temporal store: bypasses the cache, durable after ``sfence``."""
        self._check_alive()
        view = as_view(data)
        length = len(view)
        self._check_range(offset, length)
        start = self._obs_start()
        with self._lock:
            self._visible[offset : offset + length] = view
            self._pending_nt.add(offset, offset + length)
            self.stats.bytes_written += length
            self.stats.write_ops += 1
        self._obs_op("write", length, start)

    def read(self, offset: int, length: int) -> bytes:
        """Load from the cache view (sees unpersisted stores)."""
        self._check_alive()
        self._check_range(offset, length)
        start = self._obs_start()
        with self._lock:
            self.stats.bytes_read += length
            self.stats.read_ops += 1
            data = bytes(self._visible[offset : offset + length])
        self._obs_op("read", length, start)
        return data

    # ------------------------------------------------------------------
    # persistence barriers

    def clwb(self, offset: int, length: int) -> None:
        """Queue a write-back of the dirty lines in the range.

        Like hardware ``clwb``, this does NOT guarantee durability by
        itself: the data reaches the persistence domain only at the next
        :meth:`sfence`.
        """
        self._check_alive()
        self._check_range(offset, length)
        with self._lock:
            for lo, hi in self._dirty.intersect(offset, offset + length):
                self._flush_queued.add(lo, hi)

    def sfence(self) -> None:
        """Drain pending non-temporal stores and queued write-backs.

        On return, every byte covered by a prior ``nt_store`` or ``clwb``
        is durable.
        """
        self._check_alive()
        start = self._obs_start()
        with self._lock:
            drained = 0
            for spans in (self._pending_nt, self._flush_queued):
                for lo, hi in spans:
                    self._durable[lo:hi] = self._visible[lo:hi]
                    self._dirty.remove(lo, hi)
                    drained += hi - lo
            self._pending_nt.clear()
            self._flush_queued.clear()
            self.stats.bytes_persisted += drained
            self.stats.persist_ops += 1
        self._charge_bandwidth(drained)
        self._obs_op("persist", drained, start)

    def persist(self, offset: int, length: int) -> None:
        """Generic durability barrier: clwb the range, then fence.

        Also drains nt-stores, as a real ``sfence`` would; only the
        requested cached range is written back.
        """
        self.clwb(offset, length)
        self.sfence()

    def _charge_bandwidth(self, nbytes: int) -> None:
        if self._persist_bandwidth and nbytes > 0:
            time.sleep(nbytes / self._persist_bandwidth)

    # ------------------------------------------------------------------
    # crash injection

    def crash(self, rng: Optional[np.random.Generator] = None) -> None:
        """Simulate power loss.

        Unpersisted data (dirty lines and unfenced nt stores) is applied
        to the media for a random subset of its cache lines — real PMEM
        guarantees 8-byte failure atomicity but no cross-line ordering, so
        any subset of outstanding lines may or may not land.  With
        ``rng=None`` nothing unpersisted survives (the adversarial case).
        Afterwards the device refuses operations until :meth:`recover`.
        """
        with self._lock:
            if self._crashed:
                raise StorageError(f"{self.name} already crashed")
            if rng is not None:
                at_risk = IntervalSet()
                for lo, hi in self._dirty:
                    at_risk.add(lo, hi)
                for lo, hi in self._pending_nt:
                    at_risk.add(lo, hi)
                for lo, hi in at_risk:
                    for line_lo, line_hi in split_cache_lines(lo, hi - lo):
                        if rng.random() < 0.5:
                            self._durable[line_lo:line_hi] = self._visible[
                                line_lo:line_hi
                            ]
            self._crashed = True

    def recover(self) -> None:
        """Come back from a crash: the cache view is reset to the media
        content and all volatile tracking state is discarded."""
        with self._lock:
            if not self._crashed:
                raise StorageError(f"{self.name} has not crashed")
            self._visible = bytearray(self._durable)
            self._dirty.clear()
            self._pending_nt.clear()
            self._flush_queued.clear()
            self._crashed = False

    def durable_snapshot(self) -> bytes:
        """Copy of the media content (test helper)."""
        with self._lock:
            return bytes(self._durable)
