"""Pinned DRAM buffer pool for checkpoint staging.

PCcheck stages checkpoint data in DRAM between the GPU copy and the
persistent write (§3.1, §3.3).  The staging area is a pool of ``c``
pinned buffers ("chunks") of ``b`` bytes each, where ``c = M / b`` for a
user DRAM budget of ``M`` (Table 2).  A chunk is:

1. acquired by a snapshot session,
2. filled by the GPU copy engine,
3. drained to persistent storage by writer threads, and
4. released back to the pool.

When every chunk is occupied, upcoming checkpoints wait — exactly the
throughput/memory trade-off of §3.2.  The pool therefore exposes blocking
acquisition with optional timeout, plus occupancy statistics so the
orchestrator can report stall time.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional

from repro.errors import EngineError


class PinnedBuffer:
    """One pinned staging chunk of fixed size.

    Holds a ``bytearray`` plus the number of valid bytes currently staged
    in it (a checkpoint's final chunk is usually shorter than ``size``).
    """

    def __init__(self, index: int, size: int) -> None:
        self.index = index
        self.size = size
        self.data = bytearray(size)
        self.used = 0

    def fill(self, payload: bytes) -> None:
        """Stage ``payload`` into the buffer (must fit)."""
        if len(payload) > self.size:
            raise EngineError(
                f"payload of {len(payload)} bytes exceeds chunk size {self.size}"
            )
        self.data[: len(payload)] = payload
        self.used = len(payload)

    def view(self) -> bytes:
        """The staged bytes."""
        return bytes(self.data[: self.used])


class DRAMBufferPool:
    """A fixed pool of :class:`PinnedBuffer` chunks.

    Thread-safe; ``acquire`` blocks while the pool is exhausted and
    records the cumulative wait time, which surfaces in the orchestrator's
    stall accounting (the quantity Figure 14 varies DRAM size to reduce).
    """

    def __init__(self, num_chunks: int, chunk_size: int) -> None:
        if num_chunks <= 0:
            raise EngineError(f"pool needs at least one chunk, got {num_chunks}")
        if chunk_size <= 0:
            raise EngineError(f"chunk size must be positive, got {chunk_size}")
        self._chunk_size = chunk_size
        self._free: List[PinnedBuffer] = [
            PinnedBuffer(index, chunk_size) for index in range(num_chunks)
        ]
        self._total = num_chunks
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._wait_seconds = 0.0
        self._acquisitions = 0

    @property
    def chunk_size(self) -> int:
        """Size in bytes of each chunk (the parameter ``b``)."""
        return self._chunk_size

    @property
    def total_chunks(self) -> int:
        """Number of chunks in the pool (the parameter ``c``)."""
        return self._total

    @property
    def free_chunks(self) -> int:
        """Chunks currently available."""
        with self._lock:
            return len(self._free)

    @property
    def capacity_bytes(self) -> int:
        """Total DRAM dedicated to staging (the constraint ``M``)."""
        return self._total * self._chunk_size

    @property
    def wait_seconds(self) -> float:
        """Cumulative time acquirers spent blocked on an empty pool."""
        with self._lock:
            return self._wait_seconds

    def acquire(self, timeout: Optional[float] = None) -> Optional[PinnedBuffer]:
        """Take a free chunk, blocking until one is released.

        Returns ``None`` on timeout.
        """
        start = time.monotonic()
        with self._available:
            while not self._free:
                remaining = None
                if timeout is not None:
                    remaining = timeout - (time.monotonic() - start)
                    if remaining <= 0:
                        self._wait_seconds += time.monotonic() - start
                        return None
                self._available.wait(remaining)
            waited = time.monotonic() - start
            self._wait_seconds += waited
            self._acquisitions += 1
            buffer = self._free.pop()
            buffer.used = 0
            return buffer

    def try_acquire(self) -> Optional[PinnedBuffer]:
        """Non-blocking acquire; ``None`` when the pool is empty."""
        with self._available:
            if not self._free:
                return None
            self._acquisitions += 1
            buffer = self._free.pop()
            buffer.used = 0
            return buffer

    def release(self, buffer: PinnedBuffer) -> None:
        """Return a chunk to the pool and wake one waiter."""
        if buffer.size != self._chunk_size:
            raise EngineError("buffer does not belong to this pool")
        with self._available:
            if len(self._free) >= self._total:
                raise EngineError("double release into a full pool")
            self._free.append(buffer)
            self._available.notify()
