"""Pinned DRAM buffer pool for checkpoint staging.

PCcheck stages checkpoint data in DRAM between the GPU copy and the
persistent write (§3.1, §3.3).  The staging area is a pool of ``c``
pinned buffers ("chunks") of ``b`` bytes each, where ``c = M / b`` for a
user DRAM budget of ``M`` (Table 2).  A chunk is:

1. acquired by a snapshot session,
2. filled by the GPU copy engine,
3. drained to persistent storage by writer threads, and
4. released back to the pool.

When every chunk is occupied, upcoming checkpoints wait — exactly the
throughput/memory trade-off of §3.2.  The pool therefore exposes blocking
acquisition with optional timeout, plus occupancy statistics so the
orchestrator can report stall time.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional

from repro.errors import EngineError
from repro.storage.device import Buffer, as_view


class PinnedBuffer:
    """One pinned staging chunk of fixed size.

    Holds a ``bytearray`` plus the number of valid bytes currently staged
    in it (a checkpoint's final chunk is usually shorter than ``size``).
    Staging (:meth:`fill`/:meth:`append`) is the *one* intentional copy of
    the checkpoint path — the snapshot that decouples training from the
    persist phase; everything downstream moves :meth:`view` slices.
    """

    def __init__(self, index: int, size: int) -> None:
        self.index = index
        self.size = size
        self.data = bytearray(size)
        self.used = 0

    def fill(self, payload: Buffer) -> None:
        """Stage ``payload`` into the buffer (must fit).

        Accepts any C-contiguous buffer-protocol object; the staging copy
        itself is unavoidable (it is the snapshot), but the source is
        never re-materialized as ``bytes`` on the way in.
        """
        view = as_view(payload)
        if len(view) > self.size:
            raise EngineError(
                f"payload of {len(view)} bytes exceeds chunk size {self.size}"
            )
        self.data[: len(view)] = view
        self.used = len(view)

    def append(self, payload: Buffer) -> None:
        """Stage ``payload`` directly after the bytes already staged.

        Gather-style snapshot sources (several tensors landing in one
        chunk) build the chunk with successive appends instead of
        materializing an intermediate concatenation.
        """
        view = as_view(payload)
        if self.used + len(view) > self.size:
            raise EngineError(
                f"appending {len(view)} bytes at {self.used} exceeds "
                f"chunk size {self.size}"
            )
        self.data[self.used : self.used + len(view)] = view
        self.used += len(view)

    def view(self) -> memoryview:
        """A zero-copy view of the staged bytes.

        The view is only valid while the buffer is held — callers must
        finish with it before releasing the buffer back to the pool.
        """
        return memoryview(self.data)[: self.used]


class DRAMBufferPool:
    """A fixed pool of :class:`PinnedBuffer` chunks.

    Thread-safe; ``acquire`` blocks while the pool is exhausted and
    records the cumulative wait time, which surfaces in the orchestrator's
    stall accounting (the quantity Figure 14 varies DRAM size to reduce).
    """

    def __init__(self, num_chunks: int, chunk_size: int) -> None:
        if num_chunks <= 0:
            raise EngineError(f"pool needs at least one chunk, got {num_chunks}")
        if chunk_size <= 0:
            raise EngineError(f"chunk size must be positive, got {chunk_size}")
        self._chunk_size = chunk_size
        self._free: List[PinnedBuffer] = [
            PinnedBuffer(index, chunk_size) for index in range(num_chunks)
        ]
        self._total = num_chunks
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._wait_seconds = 0.0
        self._acquisitions = 0

    @property
    def chunk_size(self) -> int:
        """Size in bytes of each chunk (the parameter ``b``)."""
        return self._chunk_size

    @property
    def total_chunks(self) -> int:
        """Number of chunks in the pool (the parameter ``c``)."""
        return self._total

    @property
    def free_chunks(self) -> int:
        """Chunks currently available."""
        with self._lock:
            return len(self._free)

    @property
    def capacity_bytes(self) -> int:
        """Total DRAM dedicated to staging (the constraint ``M``)."""
        return self._total * self._chunk_size

    @property
    def wait_seconds(self) -> float:
        """Cumulative time acquirers spent blocked on an empty pool."""
        with self._lock:
            return self._wait_seconds

    def acquire(self, timeout: Optional[float] = None) -> Optional[PinnedBuffer]:
        """Take a free chunk, blocking until one is released.

        Returns ``None`` on timeout.
        """
        start = time.monotonic()
        with self._available:
            while not self._free:
                remaining = None
                if timeout is not None:
                    remaining = timeout - (time.monotonic() - start)
                    if remaining <= 0:
                        self._wait_seconds += time.monotonic() - start
                        return None
                self._available.wait(remaining)
            waited = time.monotonic() - start
            self._wait_seconds += waited
            self._acquisitions += 1
            buffer = self._free.pop()
            buffer.used = 0
            return buffer

    def try_acquire(self) -> Optional[PinnedBuffer]:
        """Non-blocking acquire; ``None`` when the pool is empty."""
        with self._available:
            if not self._free:
                return None
            self._acquisitions += 1
            buffer = self._free.pop()
            buffer.used = 0
            return buffer

    def release(self, buffer: PinnedBuffer) -> None:
        """Return a chunk to the pool and wake one waiter."""
        if buffer.size != self._chunk_size:
            raise EngineError("buffer does not belong to this pool")
        with self._available:
            if len(self._free) >= self._total:
                raise EngineError("double release into a full pool")
            self._free.append(buffer)
            self._available.notify()
