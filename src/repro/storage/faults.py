"""Crash-point injection for durability testing.

The recovery guarantee of §4.1 — *at least one valid checkpoint exists at
every instant, and it is the newest whose commit completed* — must hold no
matter where a crash lands.  :class:`CrashPointDevice` wraps an in-memory
device (SSD or PMEM model) and crashes it after a configurable number of
mutating operations, so a property-based test can sweep the crash point
across an entire checkpointing run and assert recovery succeeds at every
single one.
"""

from __future__ import annotations

import threading
from typing import Optional, Protocol, Union

import numpy as np

from repro.errors import CrashedDeviceError
from repro.storage.device import PersistentDevice
from repro.storage.pmem import SimulatedPMEM
from repro.storage.ssd import InMemorySSD


class _Crashable(Protocol):
    def crash(self, rng: Optional[np.random.Generator] = None) -> None: ...

    def recover(self) -> None: ...


class CrashBudgetExhausted(CrashedDeviceError):
    """Raised on the operation that triggers the injected crash."""


class CrashPointDevice(PersistentDevice):
    """Delegate to an inner crashable device, crashing after ``budget`` ops.

    Each ``write`` and ``persist`` consumes one unit of budget *before*
    executing.  The operation that exhausts the budget crashes the inner
    device first (so the operation's effect is lost along with all other
    unpersisted state) and raises :class:`CrashBudgetExhausted` — the
    checkpointing threads die exactly as they would on power loss.

    ``budget=None`` disables injection; :meth:`operations_performed` after
    such a run tells the test how many crash points exist to sweep.
    """

    def __init__(
        self,
        inner: Union[InMemorySSD, SimulatedPMEM],
        budget: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(inner.capacity, f"crashpoint({inner.name})")
        self._inner = inner
        self._budget = budget
        self._rng = rng
        self._ops = 0
        self._lock = threading.Lock()

    @property
    def inner(self) -> Union[InMemorySSD, SimulatedPMEM]:
        """The wrapped device (inspect after a crash for recovery tests)."""
        return self._inner

    @property
    def operations_performed(self) -> int:
        """Mutating operations executed so far (crash-point count)."""
        with self._lock:
            return self._ops

    def _spend(self) -> None:
        with self._lock:
            if self._budget is not None and self._ops >= self._budget:
                if not self._inner.crashed:
                    self._inner.crash(self._rng)
                raise CrashBudgetExhausted(
                    f"injected crash after {self._ops} operations on {self.name}"
                )
            self._ops += 1

    def write(self, offset: int, data: bytes) -> None:
        self._spend()
        self._inner.write(offset, data)

    def read(self, offset: int, length: int) -> bytes:
        return self._inner.read(offset, length)

    def persist(self, offset: int, length: int) -> None:
        self._spend()
        self._inner.persist(offset, length)

    def crash(self, rng: Optional[np.random.Generator] = None) -> None:
        """Crash the inner device immediately (manual trigger)."""
        self._inner.crash(rng)

    def recover(self) -> None:
        """Recover the inner device and reset nothing else — the budget
        stays exhausted so further injected runs need a new wrapper."""
        self._inner.recover()
