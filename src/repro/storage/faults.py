"""Crash-point and transient-fault injection for durability testing.

The recovery guarantee of §4.1 — *at least one valid checkpoint exists at
every instant, and it is the newest whose commit completed* — must hold no
matter where a crash lands.  :class:`CrashPointDevice` wraps an in-memory
device (SSD or PMEM model) and crashes it according to a
:class:`CrashSchedule`, so a property-based test (or the
``pccheck-repro crashsweep`` harness) can sweep the crash point across an
entire checkpointing run and assert recovery succeeds at every single one.

Three kinds of injection are supported:

* **Op-count crashes** (:class:`OpCountSchedule`, or the ``budget``
  shorthand): power loss after the k-th mutating operation.
* **Offset-targeted crashes** (:class:`OffsetCrashSchedule`): power loss
  on the n-th mutating operation touching a byte range — e.g. "crash
  during the commit-record persist".
* **Transient faults** (:class:`TransientFaultDevice`): an operation that
  fails K times with :class:`~repro.errors.TransientIOError` and then
  succeeds when retried — a flaky controller rather than power loss.

``torn_writes=True`` makes the crashing ``write`` additionally land a
durable *prefix* of its data (cut at an arbitrary byte, not a cache-line
boundary) before power is lost — the classic torn-write hazard that CRC
validation must catch.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List, Optional, Protocol, Union

import numpy as np

from repro.errors import CrashedDeviceError, EngineError, TransientIOError
from repro.obs.metrics import M, MetricsRegistry
from repro.storage.device import Buffer, PersistentDevice, as_view
from repro.storage.pmem import SimulatedPMEM
from repro.storage.ssd import InMemorySSD


class _Crashable(Protocol):
    def crash(self, rng: Optional[np.random.Generator] = None) -> None: ...

    def recover(self) -> None: ...


class CrashBudgetExhausted(CrashedDeviceError):
    """Raised on the operation that triggers the injected crash."""


@dataclass(frozen=True)
class DeviceOp:
    """One mutating device operation, as seen by a crash schedule."""

    index: int  #: 0-based position among mutating ops so far
    kind: str  #: ``"write"`` or ``"persist"``
    offset: int
    length: int

    def touches(self, lo: int, hi: int) -> bool:
        """True when this op overlaps the byte range ``[lo, hi)``."""
        return self.offset < hi and self.offset + self.length > lo


class CrashSchedule(Protocol):
    """Decides which mutating operation triggers the injected crash.

    Schedules are stateful (occurrence counting) — use one instance per
    :class:`CrashPointDevice`.
    """

    def should_crash(self, op: DeviceOp) -> bool: ...


class OpCountSchedule:
    """Crash on the op that would exceed a total-operation budget."""

    def __init__(self, budget: int) -> None:
        if budget < 0:
            raise EngineError(f"crash budget must be >= 0, got {budget}")
        self._budget = budget

    def should_crash(self, op: DeviceOp) -> bool:
        return op.index >= self._budget


class OffsetCrashSchedule:
    """Crash on the ``occurrence``-th mutating op touching ``[lo, hi)``.

    ``kind`` restricts matching to ``"write"`` or ``"persist"`` ops
    (``None`` matches both) — so ``OffsetCrashSchedule(commit_offset,
    commit_offset + RECORD_SIZE, occurrence=2, kind="persist")`` means
    "crash during the third commit-record fence".
    """

    def __init__(
        self,
        lo: int,
        hi: int,
        occurrence: int = 0,
        kind: Optional[str] = None,
    ) -> None:
        if hi <= lo:
            raise EngineError(f"empty target range [{lo}, {hi})")
        if occurrence < 0:
            raise EngineError(f"occurrence must be >= 0, got {occurrence}")
        self._lo = lo
        self._hi = hi
        self._occurrence = occurrence
        self._kind = kind
        self._seen = 0

    def should_crash(self, op: DeviceOp) -> bool:
        if self._kind is not None and op.kind != self._kind:
            return False
        if not op.touches(self._lo, self._hi):
            return False
        seen = self._seen
        self._seen += 1
        return seen == self._occurrence


class CrashPointDevice(PersistentDevice):
    """Delegate to an inner crashable device, crashing per a schedule.

    Each ``write`` and ``persist`` consults the schedule *before*
    executing.  The operation that triggers the crash downs the inner
    device first (so the operation's effect is lost along with all other
    unpersisted state) and raises :class:`CrashBudgetExhausted` — the
    checkpointing threads die exactly as they would on power loss.

    ``budget=k`` is shorthand for ``schedule=OpCountSchedule(k)``.
    ``budget=None`` with no schedule disables injection;
    :meth:`operations_performed` after such a run tells the test how many
    crash points exist to sweep, and ``record_ops=True`` additionally
    keeps the full op trace in :attr:`op_log` so offset-targeted sweeps
    can enumerate their occurrences.

    With ``torn_writes=True`` (requires ``rng``) a crash triggered on a
    ``write`` first lands a durable prefix of the op's data, cut at an
    rng-chosen byte — a torn write that survives power loss.
    """

    def __init__(
        self,
        inner: Union[InMemorySSD, SimulatedPMEM],
        budget: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        schedule: Optional[CrashSchedule] = None,
        torn_writes: bool = False,
        record_ops: bool = False,
    ) -> None:
        super().__init__(inner.capacity, f"crashpoint({inner.name})")
        if budget is not None and schedule is not None:
            raise EngineError("pass either budget or schedule, not both")
        if torn_writes and rng is None:
            raise EngineError("torn_writes requires an rng")
        if schedule is None and budget is not None:
            schedule = OpCountSchedule(budget)
        self._inner = inner
        self._schedule = schedule
        self._rng = rng
        self._torn_writes = torn_writes
        self._ops = 0
        self._lock = threading.Lock()
        self.op_log: Optional[List[DeviceOp]] = [] if record_ops else None

    @property
    def inner(self) -> Union[InMemorySSD, SimulatedPMEM]:
        """The wrapped device (inspect after a crash for recovery tests)."""
        return self._inner

    @property
    def preferred_align(self) -> int:
        """Forward the inner device's alignment hint.

        Without this override the wrapper reports the base-class default
        (1), so ``DeviceLayout.format`` never rounds slot sizes and a
        crashsweep over an unbuffered SSD or a striped array silently
        skips the aligned layout path."""
        return self._inner.preferred_align

    def attach_metrics(
        self, metrics: MetricsRegistry, label: Optional[str] = None
    ) -> None:
        """Instrument the wrapped device's ops and this wrapper's crash
        counter with the same registry."""
        super().attach_metrics(metrics, label)
        self._inner.attach_metrics(metrics, label or self._inner.name)

    @property
    def operations_performed(self) -> int:
        """Mutating operations executed so far (crash-point count)."""
        with self._lock:
            return self._ops

    def _spend(self, kind: str, offset: int, length: int,
               data: Optional[memoryview] = None) -> None:
        with self._lock:
            op = DeviceOp(index=self._ops, kind=kind, offset=offset,
                          length=length)
            if self._schedule is not None and self._schedule.should_crash(op):
                if not self._inner.crashed:
                    if self._torn_writes and data is not None and len(data) > 1:
                        # The dying write lands a durable prefix, cut at
                        # an arbitrary byte (torn mid-cache-line).
                        cut = int(self._rng.integers(1, len(data)))
                        self._inner.write(offset, data[:cut])
                        # The torn prefix must land atomically with the
                        # crash decision: a concurrent op slipping in
                        # between would see a half-down device.  The
                        # inner device is an in-memory model, so this
                        # "blocking" persist cannot actually block.
                        self._inner.persist(offset, cut)  # pclint: disable=PC001
                    self._inner.crash(self._rng)
                    # One crash, one count: later ops refused by the
                    # already-dead device (pipelined shares in flight on
                    # other threads) are consequences, not new injections.
                    if self._obs_metrics is not None:
                        self._obs_metrics.inc(M.CRASHES_INJECTED)
                raise CrashBudgetExhausted(
                    f"injected crash at op {op.index} "
                    f"({op.kind} {op.offset}+{op.length}) on {self.name}"
                )
            self._ops += 1
            if self.op_log is not None:
                self.op_log.append(op)

    def write(self, offset: int, data: Buffer) -> None:
        # Normalize once so the torn-write prefix is a zero-copy slice
        # and the inner device's own as_view call is a no-op.
        view = as_view(data)
        self._spend("write", offset, len(view), view)
        self._inner.write(offset, view)

    def read(self, offset: int, length: int) -> bytes:
        return self._inner.read(offset, length)

    def persist(self, offset: int, length: int) -> None:
        self._spend("persist", offset, length)
        self._inner.persist(offset, length)

    def crash(self, rng: Optional[np.random.Generator] = None) -> None:
        """Crash the inner device immediately (manual trigger)."""
        self._inner.crash(rng)

    def recover(self) -> None:
        """Recover the inner device and reset nothing else — the schedule
        stays consumed so further injected runs need a new wrapper."""
        self._inner.recover()


class TransientFaultDevice(PersistentDevice):
    """Inject retryable faults: an op fails ``times`` times, then succeeds.

    The ``occurrence``-th successful-so-far operation of ``kind`` raises
    :class:`~repro.errors.TransientIOError` on its first ``times``
    attempts; the occurrence counter does not advance on a failed
    attempt, so a caller that retries the same logical operation gets
    through on attempt ``times + 1``.  Models a flaky controller or a
    recoverable media error, as opposed to the power loss of
    :class:`CrashPointDevice`.
    """

    def __init__(
        self,
        inner: PersistentDevice,
        kind: str = "write",
        occurrence: int = 0,
        times: int = 1,
    ) -> None:
        super().__init__(inner.capacity, f"transient({inner.name})")
        if kind not in ("write", "persist", "read"):
            raise EngineError(f"unknown op kind {kind!r}")
        if times < 1:
            raise EngineError(f"times must be >= 1, got {times}")
        self._inner = inner
        self._kind = kind
        self._occurrence = occurrence
        self._failures_left = times
        self._seen = 0
        self._lock = threading.Lock()
        self.faults_injected = 0

    @property
    def inner(self) -> PersistentDevice:
        """The wrapped device."""
        return self._inner

    @property
    def preferred_align(self) -> int:
        """Forward the inner device's alignment hint (see
        :attr:`CrashPointDevice.preferred_align`)."""
        return self._inner.preferred_align

    def attach_metrics(
        self, metrics: MetricsRegistry, label: Optional[str] = None
    ) -> None:
        """Instrument the wrapped device's ops and this wrapper's fault
        counter with the same registry."""
        super().attach_metrics(metrics, label)
        self._inner.attach_metrics(metrics, label or self._inner.name)

    def _gate(self, kind: str, offset: int, length: int) -> None:
        if kind != self._kind:
            return
        with self._lock:
            if self._seen == self._occurrence and self._failures_left > 0:
                self._failures_left -= 1
                self.faults_injected += 1
                if self._obs_metrics is not None:
                    self._obs_metrics.inc(M.TRANSIENT_FAULTS)
                raise TransientIOError(
                    f"injected transient fault on {kind} {offset}+{length} "
                    f"({self._failures_left} failures remaining) on {self.name}"
                )
            self._seen += 1

    def write(self, offset: int, data: Buffer) -> None:
        self._gate("write", offset, len(as_view(data)))
        self._inner.write(offset, data)

    def read(self, offset: int, length: int) -> bytes:
        self._gate("read", offset, length)
        return self._inner.read(offset, length)

    def persist(self, offset: int, length: int) -> None:
        self._gate("persist", offset, length)
        self._inner.persist(offset, length)
