"""Storage substrate: persistent devices, DRAM staging, simulated GPU.

Everything the checkpoint engine touches below the algorithm layer lives
here.  See :mod:`repro.storage.device` for the persistence-domain model
shared by all backends.
"""

from repro.storage.device import CACHE_LINE, DeviceStats, IntervalSet, PersistentDevice
from repro.storage.dram import DRAMBufferPool, PinnedBuffer
from repro.storage.faults import CrashBudgetExhausted, CrashPointDevice
from repro.storage.gpu import (
    PCIE3_X8_BANDWIDTH,
    PCIE3_X16_BANDWIDTH,
    GPUBuffer,
    SimulatedGPU,
)
from repro.storage.pmem import CLWB_BANDWIDTH, NT_STORE_BANDWIDTH, SimulatedPMEM
from repro.storage.ssd import (
    PDSSD_NAIVE_BANDWIDTH,
    PDSSD_SATURATED_BANDWIDTH,
    SECTOR_SIZE,
    FileBackedSSD,
    InMemorySSD,
)
from repro.storage.striped import (
    STRIPE_HEADER_SIZE,
    StripedDevice,
    StripeManifest,
    persist_striped,
)

__all__ = [
    "CACHE_LINE",
    "CLWB_BANDWIDTH",
    "NT_STORE_BANDWIDTH",
    "PCIE3_X8_BANDWIDTH",
    "PCIE3_X16_BANDWIDTH",
    "PDSSD_NAIVE_BANDWIDTH",
    "PDSSD_SATURATED_BANDWIDTH",
    "SECTOR_SIZE",
    "STRIPE_HEADER_SIZE",
    "CrashBudgetExhausted",
    "CrashPointDevice",
    "DRAMBufferPool",
    "DeviceStats",
    "FileBackedSSD",
    "GPUBuffer",
    "InMemorySSD",
    "IntervalSet",
    "PersistentDevice",
    "PinnedBuffer",
    "SimulatedGPU",
    "SimulatedPMEM",
    "StripeManifest",
    "StripedDevice",
    "persist_striped",
]
