"""Striped multi-device persist: one checkpoint across N backends.

PCcheck's persist phase is device-bound; once writer parallelism
saturates one SSD the only way forward is more devices.  FastPersist
(PAPERS.md) demonstrates the recipe — shard each checkpoint write across
files/devices so aggregate bandwidth scales with the device count — and
TierCheck motivates making the striped layout *self-describing* so later
tiering work can move stripes independently.

:class:`StripedDevice` is a RAID-0-style composite that IS a
:class:`~repro.storage.device.PersistentDevice`: logical bytes
interleave across the member devices in ``stripe_size`` units, so the
engine, the layout, recovery and the crash sweeps run on top of it
unchanged.  Each member dedicates an aligned header region to a
CRC-protected **stripe manifest** recording its index, the member count,
the stripe size and the usable extent; :meth:`StripedDevice.open`
validates every manifest and turns a missing, corrupt, reordered or dead
member into a typed :class:`~repro.errors.CorruptCheckpointError` naming
the device — recovery never silently reassembles a short payload.

Reads gather member extents through the same zero-copy
:func:`~repro.core.reshard.gather_slices` kernel elastic recovery uses
(a stripe member is just a writer rank whose shard happens to
interleave).  ``persist`` issues one *covering* fence per member — in
parallel when more than one member owns bytes of the range — which is
the fence shape :func:`persist_striped` models for the lint rules.

Layout of each member device::

    +--------------------+ 0
    | stripe manifest    |  CRC-protected, STRIPE_HEADER_SIZE reserved
    +--------------------+ STRIPE_HEADER_SIZE
    | stripe row 0       |  logical chunks  i*n + index
    | stripe row 1       |  (n = member count, one stripe_size each)
    | ...                |
    +--------------------+

Logical byte ``l`` lives in chunk ``l // stripe_size``; chunk ``c`` is
owned by member ``c % n`` at row ``c // n``.
"""

from __future__ import annotations

import struct
import threading
import zlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.core.reshard import SourceSlice, gather_slices
from repro.errors import CorruptCheckpointError, StorageError
from repro.storage.device import Buffer, PersistentDevice, as_view

#: Reserved space at the head of every member for its stripe manifest
#: (aligned so the data region starts on a page boundary).
STRIPE_HEADER_SIZE: int = 4096

_STRIPE_MAGIC = b"PCSTRIP1"
# magic(8s) version(I) member_index(I) member_count(I) stripe_size(Q)
# usable_per_member(Q)
_STRIPE_HEADER = struct.Struct("<8sIIIQQ")
_STRIPE_CRC = struct.Struct("<I")
_STRIPE_VERSION = 1


@dataclass(frozen=True)
class StripeManifest:
    """One member's self-description of the stripe set it belongs to."""

    member_index: int
    member_count: int
    stripe_size: int
    #: Striped data bytes each member holds (multiple of ``stripe_size``).
    usable_per_member: int


def encode_stripe_manifest(manifest: StripeManifest) -> bytes:
    """Serialize a manifest with its protecting CRC."""
    body = _STRIPE_HEADER.pack(
        _STRIPE_MAGIC,
        _STRIPE_VERSION,
        manifest.member_index,
        manifest.member_count,
        manifest.stripe_size,
        manifest.usable_per_member,
    )
    return body + _STRIPE_CRC.pack(zlib.crc32(body))


def decode_stripe_manifest(raw: bytes, device_name: str) -> StripeManifest:
    """Parse and validate a member's manifest.

    Raises :class:`~repro.errors.CorruptCheckpointError` naming
    ``device_name`` on truncation, CRC mismatch, wrong magic or an
    unknown version.
    """
    needed = _STRIPE_HEADER.size + _STRIPE_CRC.size
    if len(raw) < needed:
        raise CorruptCheckpointError(
            f"stripe manifest on {device_name} is truncated "
            f"({len(raw)} of {needed} bytes)"
        )
    body = raw[: _STRIPE_HEADER.size]
    (crc,) = _STRIPE_CRC.unpack_from(raw, _STRIPE_HEADER.size)
    if zlib.crc32(body) != crc:
        raise CorruptCheckpointError(
            f"stripe manifest CRC mismatch on {device_name}"
        )
    magic, version, index, count, stripe_size, usable = _STRIPE_HEADER.unpack(
        body
    )
    if magic != _STRIPE_MAGIC:
        raise CorruptCheckpointError(
            f"{device_name} is not a stripe member (bad manifest magic)"
        )
    if version != _STRIPE_VERSION:
        raise CorruptCheckpointError(
            f"unsupported stripe manifest version {version} on {device_name}"
        )
    return StripeManifest(
        member_index=index,
        member_count=count,
        stripe_size=stripe_size,
        usable_per_member=usable,
    )


class StripedDevice(PersistentDevice):
    """A RAID-0 interleave over N member :class:`PersistentDevice`\\ s.

    Construct with :meth:`create` (writes fresh manifests) or
    :meth:`open` (validates existing ones).  The composite owns its
    members: :meth:`close` closes them.
    """

    def __init__(
        self,
        members: Sequence[PersistentDevice],
        stripe_size: int,
        usable_per_member: int,
    ) -> None:
        if not members:
            raise StorageError("a striped device needs at least one member")
        if stripe_size <= 0:
            raise StorageError(
                f"stripe size must be positive, got {stripe_size}"
            )
        if usable_per_member <= 0 or usable_per_member % stripe_size:
            raise StorageError(
                f"usable extent {usable_per_member} must be a positive "
                f"multiple of the stripe size {stripe_size}"
            )
        name = "striped(" + "+".join(member.name for member in members) + ")"
        super().__init__(len(members) * usable_per_member, name)
        self._members: Tuple[PersistentDevice, ...] = tuple(members)
        self._stripe = stripe_size
        self._usable = usable_per_member
        for member in self._members:
            needed = STRIPE_HEADER_SIZE + usable_per_member
            if member.capacity < needed:
                raise StorageError(
                    f"stripe member {member.name} holds {member.capacity} "
                    f"bytes but the stripe geometry needs {needed}"
                )
        self._fence_lock = threading.Lock()
        self._fences: ThreadPoolExecutor | None = None

    # ------------------------------------------------------------------
    # construction

    @classmethod
    def create(
        cls, members: Sequence[PersistentDevice], stripe_size: int
    ) -> "StripedDevice":
        """Format ``members`` as a fresh stripe set.

        The usable extent is the largest whole-stripe extent the
        *smallest* member can hold; every member gets its CRC-protected
        manifest written and fenced before the device is handed back.
        """
        if not members:
            raise StorageError("a striped device needs at least one member")
        if stripe_size <= 0:
            raise StorageError(
                f"stripe size must be positive, got {stripe_size}"
            )
        usable = min(
            (member.capacity - STRIPE_HEADER_SIZE) // stripe_size
            for member in members
        ) * stripe_size
        if usable <= 0:
            smallest = min(members, key=lambda member: member.capacity)
            raise StorageError(
                f"stripe member {smallest.name} is too small for even one "
                f"{stripe_size}-byte stripe after the "
                f"{STRIPE_HEADER_SIZE}-byte manifest"
            )
        for index, member in enumerate(members):
            manifest = StripeManifest(
                member_index=index,
                member_count=len(members),
                stripe_size=stripe_size,
                usable_per_member=usable,
            )
            member.write(0, encode_stripe_manifest(manifest))
            member.persist(0, STRIPE_HEADER_SIZE)
        return cls(members, stripe_size, usable)

    @classmethod
    def open(cls, members: Sequence[PersistentDevice]) -> "StripedDevice":
        """Reassemble an existing stripe set, validating every manifest.

        A member whose manifest is missing, torn, or claims a different
        position/geometry — or a member that cannot even be read (dead
        device) — raises :class:`~repro.errors.CorruptCheckpointError`
        naming that device.
        """
        if not members:
            raise StorageError("a striped device needs at least one member")
        manifests: List[StripeManifest] = []
        for index, member in enumerate(members):
            try:
                raw = member.read(
                    0, _STRIPE_HEADER.size + _STRIPE_CRC.size
                )
            except StorageError as exc:
                raise CorruptCheckpointError(
                    f"stripe member {member.name} is unreadable: {exc}"
                ) from exc
            manifest = decode_stripe_manifest(raw, member.name)
            if manifest.member_index != index:
                raise CorruptCheckpointError(
                    f"stripe member {member.name} claims index "
                    f"{manifest.member_index} but was passed at position "
                    f"{index} — members missing or out of order?"
                )
            if manifest.member_count != len(members):
                raise CorruptCheckpointError(
                    f"stripe member {member.name} belongs to a "
                    f"{manifest.member_count}-way stripe set; "
                    f"{len(members)} members were supplied"
                )
            manifests.append(manifest)

        first = manifests[0]
        for member, manifest in zip(members, manifests):
            if (
                manifest.stripe_size != first.stripe_size
                or manifest.usable_per_member != first.usable_per_member
            ):
                raise CorruptCheckpointError(
                    f"stripe member {member.name} disagrees about the "
                    f"stripe geometry ({manifest.stripe_size}/"
                    f"{manifest.usable_per_member} vs {first.stripe_size}/"
                    f"{first.usable_per_member})"
                )
        return cls(members, first.stripe_size, first.usable_per_member)

    # ------------------------------------------------------------------
    # geometry

    @property
    def members(self) -> Tuple[PersistentDevice, ...]:
        """The member devices, in stripe order."""
        return self._members

    @property
    def stripe_size(self) -> int:
        """Bytes per stripe chunk."""
        return self._stripe

    @property
    def preferred_align(self) -> int:
        """Writer shares should not straddle stripe boundaries."""
        return self._stripe

    def _segments(
        self, offset: int, length: int
    ) -> Iterator[Tuple[int, int, int, int]]:
        """Yield ``(member, member_offset, logical_offset, seg_len)`` for
        each maximal single-member run of ``[offset, offset + length)``."""
        n = len(self._members)
        pos = offset
        end = offset + length
        while pos < end:
            chunk, within = divmod(pos, self._stripe)
            member = chunk % n
            row = chunk // n
            seg = min(self._stripe - within, end - pos)
            yield (
                member,
                STRIPE_HEADER_SIZE + row * self._stripe + within,
                pos,
                seg,
            )
            pos += seg

    def _member_spans(
        self, offset: int, length: int
    ) -> Dict[int, Tuple[int, int]]:
        """Covering ``[lo, hi)`` member-space span per member owning bytes
        of the logical range."""
        spans: Dict[int, Tuple[int, int]] = {}
        for member, m_off, _logical, seg in self._segments(offset, length):
            lo, hi = spans.get(member, (m_off, m_off + seg))
            spans[member] = (min(lo, m_off), max(hi, m_off + seg))
        return spans

    # ------------------------------------------------------------------
    # device interface

    def write(self, offset: int, data: Buffer) -> None:
        self._check_open()
        view = as_view(data)
        length = len(view)
        self._check_range(offset, length)
        start = self._obs_start()
        for member, m_off, logical, seg in self._segments(offset, length):
            rel = logical - offset
            # Zero-copy: each member gets an O(1) slice of the payload.
            self._members[member].write(m_off, view[rel : rel + seg])
        self._obs_op("write", length, start)

    def read(self, offset: int, length: int) -> bytes:
        self._check_open()
        self._check_range(offset, length)
        start = self._obs_start()
        spans = self._member_spans(offset, length)
        views: Dict[int, memoryview] = {
            member: memoryview(self._members[member].read(lo, hi - lo))
            for member, (lo, hi) in spans.items()
        }
        # Stripe reassembly IS a reshard gather: member index plays the
        # writer rank, and every recovered byte is copied exactly once.
        slices = [
            SourceSlice(
                writer_rank=member,
                source_start=m_off - spans[member][0],
                length=seg,
                target_start=logical - offset,
            )
            for member, m_off, logical, seg in self._segments(offset, length)
        ]
        data = bytes(gather_slices(length, slices, views))
        self._obs_op("read", length, start)
        return data

    def persist(self, offset: int, length: int) -> None:
        """Per-device covering fences: ONE fence per member owning bytes
        of the range, issued in parallel when several members do."""
        self._check_open()
        self._check_range(offset, length)
        start = self._obs_start()
        spans = sorted(self._member_spans(offset, length).items())
        if len(spans) <= 1:
            for member, (lo, hi) in spans:
                self._members[member].persist(lo, hi - lo)
        else:
            futures = [
                self._fence_pool().submit(
                    self._members[member].persist, lo, hi - lo
                )
                for member, (lo, hi) in spans
            ]
            # Wait for EVERY fence before propagating, so no member is
            # left with an in-flight fence after the error surfaces.
            errors = [future.exception() for future in futures]
            for error in errors:
                if error is not None:
                    raise error
        self._obs_op("persist", length, start)

    def _fence_pool(self) -> ThreadPoolExecutor:
        with self._fence_lock:
            if self._fences is None:
                self._fences = ThreadPoolExecutor(
                    max_workers=len(self._members),
                    thread_name_prefix="pccheck-stripe-fence",
                )
            return self._fences

    def close(self) -> None:
        if not self.closed:
            with self._fence_lock:
                if self._fences is not None:
                    self._fences.shutdown(wait=True)
                    self._fences = None
            for member in self._members:
                member.close()
        super().close()


def persist_striped(
    writer, pieces: Sequence[Tuple[int, Buffer]]
) -> None:
    """Persist one checkpoint's ``(offset, payload)`` pieces across a
    striped device.

    One batched submission through ``writer`` (a
    :class:`~repro.core.writer.ParallelWriter` over a
    :class:`StripedDevice`), then the covering fence fans out as one
    fence per member device.  Like ``persist_many``, this is a full
    durability barrier for everything it wrote — the static fence-
    coverage rules (PC004/PC010) treat it exactly that way.
    """
    writer.persist_many(pieces)
