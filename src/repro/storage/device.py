"""Abstract persistent-device interface.

The checkpoint engine is written against this interface so it runs
unchanged on every backend the paper evaluates:

* :class:`repro.storage.ssd.FileBackedSSD` — a real file; ``persist`` maps
  to ``os.fsync``, the analogue of the paper's ``msync`` on an mmapped
  region.
* :class:`repro.storage.ssd.InMemorySSD` — same semantics in RAM, with
  crash injection for durability tests.
* :class:`repro.storage.pmem.SimulatedPMEM` — byte-addressable persistent
  memory with a volatile CPU-cache model, non-temporal stores and fences.

The central abstraction is the *persistence domain*: ``write`` makes data
visible to subsequent ``read`` calls but NOT durable; only ``persist``
(msync / clwb+fence / sfence after nt-stores) guarantees the bytes survive
a crash.  Fault-injecting devices exploit exactly this gap: ``crash()``
discards (or partially, randomly applies) everything not yet persisted,
which is the hazard the paper's BARRIER calls exist to close.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import DeviceClosedError, OutOfSpaceError, StorageError
from repro.obs.metrics import M, MetricsRegistry

#: Size of a simulated CPU cache line; crash injection applies or drops
#: volatile data at this granularity, matching PMEM failure atomicity.
CACHE_LINE: int = 64

#: Anything the persist path accepts as payload: ``write`` takes any
#: C-contiguous buffer-protocol object and never copies it.
Buffer = Union[bytes, bytearray, memoryview]


def as_view(data: Buffer) -> memoryview:
    """A flat ``uint8`` :class:`memoryview` over ``data`` — zero copies.

    The persist hot path hands payloads around as views so chunk splits
    and writer shares are O(1) slices instead of ``bytes`` copies.  Any
    C-contiguous buffer-protocol object is accepted (``bytes``,
    ``bytearray``, ``memoryview``, numpy arrays); non-contiguous views
    are rejected — silently linearizing one would reintroduce the very
    copy this path exists to avoid.
    """
    if isinstance(data, memoryview):
        view = data
    else:
        try:
            view = memoryview(data)
        except TypeError as exc:
            raise StorageError(
                f"payload of type {type(data).__name__} does not support "
                "the buffer protocol"
            ) from exc
    if not view.c_contiguous:
        raise StorageError(
            "non-contiguous buffer rejected on the zero-copy persist path; "
            "pass a contiguous view (e.g. numpy.ascontiguousarray)"
        )
    if view.ndim != 1 or view.format != "B":
        view = view.cast("B")
    return view


class IntervalSet:
    """A set of half-open byte intervals ``[start, stop)``.

    Used by the in-memory devices to track which ranges are dirty
    (written but not yet persisted).  Intervals are kept sorted and
    coalesced; all operations are O(n) in the number of disjoint
    intervals, which stays tiny for checkpoint workloads.
    """

    def __init__(self) -> None:
        self._spans: List[Tuple[int, int]] = []

    def __bool__(self) -> bool:
        return bool(self._spans)

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return iter(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def total_bytes(self) -> int:
        """Sum of the lengths of all intervals."""
        return sum(stop - start for start, stop in self._spans)

    def add(self, start: int, stop: int) -> None:
        """Insert ``[start, stop)``, merging with overlapping intervals."""
        if stop <= start:
            return
        merged: List[Tuple[int, int]] = []
        placed = False
        for span_start, span_stop in self._spans:
            if span_stop < start or span_start > stop:
                if not placed and span_start > stop:
                    merged.append((start, stop))
                    placed = True
                merged.append((span_start, span_stop))
            else:
                start = min(start, span_start)
                stop = max(stop, span_stop)
        if not placed:
            merged.append((start, stop))
            merged.sort()
        self._spans = merged

    def remove(self, start: int, stop: int) -> None:
        """Delete ``[start, stop)`` from the set, splitting as needed."""
        if stop <= start:
            return
        result: List[Tuple[int, int]] = []
        for span_start, span_stop in self._spans:
            if span_stop <= start or span_start >= stop:
                result.append((span_start, span_stop))
                continue
            if span_start < start:
                result.append((span_start, start))
            if span_stop > stop:
                result.append((stop, span_stop))
        self._spans = result

    def intersect(self, start: int, stop: int) -> List[Tuple[int, int]]:
        """Return the parts of the set that overlap ``[start, stop)``."""
        out: List[Tuple[int, int]] = []
        for span_start, span_stop in self._spans:
            lo = max(span_start, start)
            hi = min(span_stop, stop)
            if lo < hi:
                out.append((lo, hi))
        return out

    def clear(self) -> None:
        """Remove every interval."""
        self._spans = []

    def copy(self) -> "IntervalSet":
        """Return an independent copy."""
        clone = IntervalSet()
        clone._spans = list(self._spans)
        return clone


class PersistentDevice(ABC):
    """A fixed-capacity, byte-addressed persistent device.

    Subclasses must make ``persist`` a durability barrier: once it
    returns, the covered bytes must survive :meth:`crash` (where crash is
    supported) or process death (for file-backed devices).
    """

    def __init__(self, capacity: int, name: str = "device") -> None:
        if capacity <= 0:
            raise StorageError(f"device capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._name = name
        self._closed = False
        self._obs_metrics: Optional[MetricsRegistry] = None
        self._obs_label = name

    @property
    def capacity(self) -> int:
        """Total device size in bytes."""
        return self._capacity

    @property
    def name(self) -> str:
        """Human-readable device name (used in error messages)."""
        return self._name

    @property
    def closed(self) -> bool:
        """True after :meth:`close`."""
        return self._closed

    @property
    def preferred_align(self) -> int:
        """Alignment (bytes) the device wants write boundaries to honor.

        ``1`` for ordinary devices.  Unbuffered (O_DIRECT-style) files
        report their sector size and striped devices their stripe size;
        :func:`repro.core.writer.split_range` rounds share boundaries to
        this so parallel writers never split a sector or stripe between
        two threads.
        """
        return 1

    def attach_metrics(
        self, metrics: MetricsRegistry, label: Optional[str] = None
    ) -> None:
        """Mirror per-op bytes/latency into ``metrics``.

        Every subsequent ``write``/``read``/``persist`` reports a
        ``device=<label>``, ``op=`` labelled series; the ``stats``
        attribute of concrete devices stays untouched.  Detached (the
        default) the ops pay nothing beyond one ``None`` check.
        """
        self._obs_metrics = metrics
        self._obs_label = label if label is not None else self._name

    def _obs_start(self) -> float:
        """Per-op timing origin; 0.0 when no registry is attached."""
        return time.monotonic() if self._obs_metrics is not None else 0.0

    def _obs_op(self, op: str, nbytes: int, start: float) -> None:
        """Report one device operation (no-op when detached)."""
        obs = self._obs_metrics
        if obs is None:
            return
        label = self._obs_label
        obs.inc(M.DEVICE_OPS, 1, device=label, op=op)
        if nbytes:
            obs.inc(M.DEVICE_OP_BYTES, nbytes, device=label, op=op)
        obs.observe(
            M.DEVICE_OP_SECONDS, time.monotonic() - start,
            device=label, op=op,
        )

    def _check_open(self) -> None:
        if self._closed:
            raise DeviceClosedError(f"{self._name} is closed")

    def _check_range(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0:
            raise StorageError(
                f"negative range ({offset}, {length}) on {self._name}"
            )
        if offset + length > self._capacity:
            raise OutOfSpaceError(
                f"range [{offset}, {offset + length}) exceeds capacity "
                f"{self._capacity} of {self._name}"
            )

    @abstractmethod
    def write(self, offset: int, data: Buffer) -> None:
        """Store ``data`` at ``offset``; visible immediately, durable only
        after :meth:`persist` covers the range.

        ``data`` may be any C-contiguous buffer-protocol object (see
        :func:`as_view`); implementations slice it with ``memoryview``
        internally and never take a ``bytes`` copy.
        """

    @abstractmethod
    def read(self, offset: int, length: int) -> bytes:
        """Return ``length`` bytes at ``offset`` (sees unpersisted writes)."""

    @abstractmethod
    def persist(self, offset: int, length: int) -> None:
        """Durability barrier for ``[offset, offset + length)``."""

    def persist_all(self) -> None:
        """Durability barrier for the whole device."""
        self.persist(0, self._capacity)

    def close(self) -> None:
        """Release resources; further operations raise."""
        self._closed = True

    def __enter__(self) -> "PersistentDevice":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def split_cache_lines(offset: int, length: int) -> Iterator[Tuple[int, int]]:
    """Yield the cache-line-aligned sub-ranges covering ``[offset, offset+length)``.

    Crash injection applies volatile data at cache-line granularity; this
    helper enumerates the lines a dirty range touches.
    """
    if length <= 0:
        return
    line_start = (offset // CACHE_LINE) * CACHE_LINE
    end = offset + length
    while line_start < end:
        line_stop = line_start + CACHE_LINE
        yield max(line_start, offset), min(line_stop, end)
        line_start = line_stop


class DeviceStats:
    """Byte and operation counters shared by the concrete devices."""

    def __init__(self) -> None:
        self.bytes_written = 0
        self.bytes_read = 0
        self.bytes_persisted = 0
        self.write_ops = 0
        self.read_ops = 0
        self.persist_ops = 0

    def as_dict(self) -> Dict[str, int]:
        """Snapshot of all counters."""
        return {
            "bytes_written": self.bytes_written,
            "bytes_read": self.bytes_read,
            "bytes_persisted": self.bytes_persisted,
            "write_ops": self.write_ops,
            "read_ops": self.read_ops,
            "persist_ops": self.persist_ops,
        }
