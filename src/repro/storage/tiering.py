"""Tiered checkpoint storage: hot commit path, async demotion to cold.

PCcheck's evaluation assumes one local persistence tier; a fleet-scale
service wants TierCheck-style tiering — keep the newest checkpoints on
the fastest local medium, mirror them to slower/cheaper tiers *off the
commit path*, and at restart walk the tiers fastest-first.  This module
supplies the three pieces:

:class:`TieredDevice`
    The device the engine runs on.  It *is* the hot tier: every
    ``write``/``read``/``persist`` (and the alignment hint) delegates to
    the hot device and nothing else — the commit record structurally
    cannot depend on the warm or remote tier, which is the invariant the
    ``tiered`` crashsweep workload proves dynamically.

:class:`TierPolicy`
    The demotion engine.  Its :meth:`~TierPolicy.on_commit` hook is
    installed as the engine's ``post_cas_hook``: each committed
    checkpoint is *enqueued* (never processed inline — a slow or failed
    demotion must not slow or fail a commit) and a background worker
    later copies it hot → warm → remote:

    * **warm**: the worker owns a second formatted region on the warm
      device and replays the §4.1 ordering there through its own
      :class:`~repro.core.writer.ParallelWriter` ``submit``/``reap``
      batch — payload first, then header, then (if newer) commit
      record, each durable before the next — so the warm region is
      itself always recoverable, even if power fails mid-demotion.
    * **remote**: one whole-blob PUT (``ckpt/<counter>`` = slot header
      + payload) to a :class:`~repro.storage.remote.RemoteStore`.  No
      ordering is needed: blobs are atomic, and a lost PUT only means
      the cold tier lags.

    A checkpoint superseded before its demotion ran (slot recycled, CRC
    no longer matches) is skipped, not an error.  Remote outages and a
    crashed local device are counted and survived — the worker must
    outlive any tier's failure.

:func:`~repro.core.recovery.recover_tiered`
    The restart path: hot, then warm, then remote, CRC-re-validating at
    every tier and falling through on corrupt/missing copies (it lives
    in ``repro.core.recovery`` beside the other recovery entry points).
"""

from __future__ import annotations

import dataclasses
import queue
import threading
import time
from dataclasses import dataclass
from typing import Optional, Union

from repro.core.layout import DeviceLayout
from repro.core.meta import (
    RECORD_SIZE,
    CheckMeta,
    encode_commit_record,
    encode_slot_header,
    payload_crc,
)
from repro.core.writer import ParallelWriter
from repro.errors import (
    ConfigError,
    LayoutError,
    PCcheckError,
    StorageError,
)
from repro.obs.metrics import M, MetricsRegistry
from repro.storage.device import Buffer, PersistentDevice
from repro.storage.remote import RemoteStore

#: Key prefix under which demoted checkpoints live in the remote store.
REMOTE_PREFIX = "ckpt/"

#: Poll interval for :meth:`TierPolicy.drain` while the worker catches up.
_DRAIN_POLL_SECONDS = 0.001


def remote_key(counter: int) -> str:
    """Blob key for checkpoint ``counter`` (zero-padded so lexicographic
    order of keys equals numeric order of counters)."""
    return f"{REMOTE_PREFIX}{counter:020d}"


@dataclass(frozen=True)
class TierPlan:
    """How a tiered stack is assembled and demotes (``EngineSpec.tiers``).

    ``demote_threads`` sizes the demotion worker's ParallelWriter over
    the warm device; the ``remote_*`` knobs parameterize the built
    :class:`~repro.storage.remote.RemoteStore` (all default to the
    fast/deterministic settings).  ``max_queue`` bounds the demotion
    backlog — when full, new commits are *skipped* (counted, not
    blocked): demotion lag must never produce commit-path backpressure.
    """

    demote_threads: int = 2
    max_queue: int = 64
    remote_latency: float = 0.0
    remote_bandwidth: Optional[float] = None
    remote_visibility_ops: int = 0

    def __post_init__(self) -> None:
        if self.demote_threads < 1:
            raise ConfigError(
                f"demote_threads must be >= 1, got {self.demote_threads}"
            )
        if self.max_queue < 1:
            raise ConfigError(
                f"max_queue must be >= 1, got {self.max_queue}"
            )

    def build_remote(self, name: str = "remote") -> RemoteStore:
        """Construct the remote store this plan describes."""
        return RemoteStore(
            name,
            latency=self.remote_latency,
            bandwidth=self.remote_bandwidth,
            visibility_ops=self.remote_visibility_ops,
        )


class TieredDevice(PersistentDevice):
    """The hot tier, with the colder tiers attached for demotion/recovery.

    Every device operation — including :attr:`preferred_align`, so the
    layout still rounds for an unbuffered/striped hot device — delegates
    to ``hot`` and *only* ``hot``.  The warm device and remote store are
    reachable as attributes for the policy and recovery, but no engine
    write or persist can touch them: the commit path's durability
    depends on the hot tier alone, by construction.
    """

    def __init__(
        self,
        hot: PersistentDevice,
        warm: PersistentDevice,
        remote: RemoteStore,
    ) -> None:
        super().__init__(hot.capacity, f"tiered({hot.name})")
        self.hot = hot
        self.warm = warm
        self.remote = remote

    @property
    def preferred_align(self) -> int:
        return self.hot.preferred_align

    def attach_metrics(
        self, metrics: MetricsRegistry, label: Optional[str] = None
    ) -> None:
        super().attach_metrics(metrics, label)
        self.hot.attach_metrics(metrics, label or self.hot.name)
        self.warm.attach_metrics(metrics, self.warm.name)
        self.remote.attach_metrics(metrics)

    def write(self, offset: int, data: Buffer) -> None:
        self.hot.write(offset, data)

    def read(self, offset: int, length: int) -> bytes:
        return self.hot.read(offset, length)

    def persist(self, offset: int, length: int) -> None:
        self.hot.persist(offset, length)

    def close(self) -> None:
        super().close()
        self.hot.close()
        self.warm.close()


class TierPolicy:
    """Asynchronous hot→warm→remote demotion, off the commit path.

    Construct *after* the hot layout exists and pass
    ``post_cas_hook=policy.on_commit`` to the
    :class:`~repro.core.engine.CheckpointEngine`; call :meth:`stop`
    (idempotent) before closing the devices.
    """

    _STOP = object()

    def __init__(
        self,
        layout: DeviceLayout,
        warm: PersistentDevice,
        remote: RemoteStore,
        plan: Optional[TierPlan] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._plan = plan or TierPlan()
        self._hot_layout = layout
        self._remote = remote
        self._metrics = metrics
        self._queue: "queue.Queue[Union[CheckMeta, object]]" = queue.Queue(
            maxsize=self._plan.max_queue
        )
        self._warm_layout = self._attach_warm(warm)
        self._writer = ParallelWriter(warm, self._plan.demote_threads)
        # Highest counter the *warm commit record* points at; demotions
        # arrive in commit order, but a skipped/failed one must not let
        # an older checkpoint roll the record back.
        self._warm_committed = -1
        existing = self._warm_layout.read_all_slot_headers()
        for header in existing:
            if header is not None:
                self._warm_committed = max(self._warm_committed, header.counter)
        self.demoted = 0
        self.skipped = 0
        self.failures = 0
        #: Last error swallowed by the never-raise hook (diagnostics).
        self.last_hook_error: Optional[BaseException] = None
        self._stopped = False
        self._lock = threading.Lock()
        self._worker = threading.Thread(
            target=self._worker_loop, name="pccheck-tier-demoter", daemon=True
        )
        self._worker.start()

    def _attach_warm(self, warm: PersistentDevice) -> DeviceLayout:
        """Reopen the warm region if one exists, else format it with the
        hot region's slot count (warm payloads are hot payloads)."""
        hot = self._hot_layout.geometry
        try:
            layout = DeviceLayout.open(warm)
            if layout.payload_capacity >= hot.payload_capacity:
                return layout
            # Too small for this engine's payloads: reformat below.
        except (LayoutError, StorageError):
            pass
        return DeviceLayout.format(
            warm,
            num_slots=hot.num_slots,
            slot_size=hot.payload_capacity + RECORD_SIZE,
        )

    # ------------------------------------------------------------------
    # the engine-facing hook

    def on_commit(self, meta: CheckMeta) -> None:
        """``post_cas_hook``: enqueue a committed checkpoint for demotion.

        Must never raise (a raising hook makes the engine *hold* the
        superseded slot) and never block: with a full backlog the commit
        is skipped and counted — demotion lag is an observability event,
        not backpressure.
        """
        try:
            self._queue.put_nowait(meta)
            self._set_queue_gauge()
        except queue.Full:
            with self._lock:
                self.skipped += 1
            self._inc(M.TIER_DEMOTION_SKIPPED)
        except BaseException as exc:
            # Defensive: nothing above should throw, but the hook
            # contract (never hold a slot) outranks any accounting.
            with self._lock:
                self.failures += 1
                self.last_hook_error = exc

    # ------------------------------------------------------------------
    # worker

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is self._STOP:
                    return
                self._demote(item)
            finally:
                self._queue.task_done()
                self._set_queue_gauge()

    def _demote(self, meta: CheckMeta) -> None:
        start = time.monotonic()
        # Re-read and re-validate the hot copy: the slot may have been
        # recycled under a newer checkpoint since this commit queued.
        try:
            payload = self._hot_layout.read_payload(meta)
        except PCcheckError as exc:
            self._count_failure("hot", exc)
            return
        if payload_crc(payload) != meta.payload_crc:
            with self._lock:
                self.skipped += 1
            self._inc(M.TIER_DEMOTION_SKIPPED)
            return
        warm_ok = self._demote_warm(meta, payload)
        remote_ok = self._demote_remote(meta, payload)
        if warm_ok or remote_ok:
            with self._lock:
                self.demoted += 1
            if self._metrics is not None:
                self._metrics.observe(
                    M.TIER_DEMOTION_SECONDS, time.monotonic() - start
                )

    def _demote_warm(self, meta: CheckMeta, payload: bytes) -> bool:
        """Replay the §4.1 ordering onto the warm region."""
        layout = self._warm_layout
        slot = meta.counter % layout.num_slots
        warm_meta = dataclasses.replace(meta, slot=slot)
        try:
            # Payload durable first (submit/reap batch over the demote
            # writer pool), then the header, then — only for a counter
            # newer than the warm record — the commit record.  Power
            # loss between any two steps leaves the warm region's
            # previous checkpoint intact and recoverable.
            self._writer.reap(
                self._writer.submit(
                    [(layout.payload_offset(slot), payload)]
                )
            )
            self._writer.persist(
                layout.slot_offset(slot), encode_slot_header(warm_meta)
            )
            if meta.counter > self._warm_committed:
                self._writer.persist(
                    layout.commit_offset, encode_commit_record(warm_meta)
                )
                self._warm_committed = meta.counter
        except PCcheckError as exc:
            self._count_failure("warm", exc)
            return False
        self._inc(M.TIER_DEMOTIONS, tier="warm")
        self._inc(M.TIER_DEMOTION_BYTES, len(payload), tier="warm")
        return True

    def _demote_remote(self, meta: CheckMeta, payload: bytes) -> bool:
        try:
            self._remote.put(
                remote_key(meta.counter), encode_slot_header(meta) + payload
            )
        except PCcheckError as exc:
            self._count_failure("remote", exc)
            return False
        self._inc(M.TIER_DEMOTIONS, tier="remote")
        self._inc(M.TIER_DEMOTION_BYTES, len(payload), tier="remote")
        return True

    def _count_failure(self, tier: str, exc: BaseException) -> None:
        with self._lock:
            self.failures += 1
        self._inc(
            M.TIER_DEMOTION_FAILURES, tier=tier, reason=type(exc).__name__
        )

    # ------------------------------------------------------------------
    # helpers / lifecycle

    def _inc(self, name: str, amount: float = 1.0, **labels: str) -> None:
        if self._metrics is not None:
            self._metrics.inc(name, amount, **labels)

    def _set_queue_gauge(self) -> None:
        if self._metrics is not None:
            self._metrics.set_gauge(
                M.TIER_DEMOTION_QUEUE, self._queue.qsize()
            )

    @property
    def warm_layout(self) -> DeviceLayout:
        """The warm tier's formatted region (recovery walks it)."""
        return self._warm_layout

    @property
    def backlog(self) -> int:
        """Demotions enqueued but not yet processed."""
        return self._queue.qsize()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait until every enqueued demotion has been processed.

        Returns ``False`` on timeout (the worker may be stuck on a
        throttled remote); the backlog is preserved either way.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while self._queue.unfinished_tasks:  # noqa: SLF001-ish, stdlib attr
            if deadline is not None and time.monotonic() > deadline:
                return False
            time.sleep(_DRAIN_POLL_SECONDS)
        return True

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the worker (idempotent).  Items still queued are dropped
        — demotion is best-effort by design; the hot tier holds truth."""
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
        # Jump the queue-full case: the worker only needs to see the
        # sentinel eventually, and a full queue means it is alive.
        while True:
            try:
                self._queue.put_nowait(self._STOP)
                break
            except queue.Full:
                try:
                    self._queue.get_nowait()
                    self._queue.task_done()
                except queue.Empty:
                    pass
        self._worker.join(timeout)
        self._writer.close()

    def __enter__(self) -> "TierPolicy":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
