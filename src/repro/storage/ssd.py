"""SSD backends: a real file-backed device and an in-memory crash model.

The paper's SSD path mmaps a file on a GCP ``pd-ssd`` and persists each
checkpoint write with ``msync()`` (§3.3).  Two devices reproduce it:

:class:`FileBackedSSD`
    A real file accessed with ``os.pwrite``/``os.pread``; ``persist`` calls
    ``os.fsync``, the durability barrier equivalent to ``msync`` on an
    mmapped region.  This is the backend the examples and functional
    benchmarks use — checkpoints genuinely hit the filesystem.

:class:`InMemorySSD`
    Identical semantics over RAM, with the same page-cache/crash model the
    PMEM simulator uses, so durability property tests can crash the device
    at arbitrary points.  Real block devices have a volatile write cache
    (here: the OS page cache) between ``write`` and ``msync``; a crash
    may persist any subset of outstanding *pages*, which this model
    applies at cache-line granularity like the PMEM simulator (a stricter,
    adversarial refinement).
"""

from __future__ import annotations

import os
import threading
import time
from typing import Optional

import numpy as np

from repro.errors import CrashedDeviceError, StorageError
from repro.storage.device import (
    Buffer,
    DeviceStats,
    IntervalSet,
    PersistentDevice,
    as_view,
    split_cache_lines,
)

#: Effective torch.save+flush bandwidth the paper measured on pd-ssd
#: (16 GB OPT-1.3B state in 37 s, §1) — the naive single-stream path.
PDSSD_NAIVE_BANDWIDTH: float = 16.2e9 / 37.0
#: Saturated multi-threaded pd-ssd write bandwidth used for calibration.
PDSSD_SATURATED_BANDWIDTH: float = 0.8e9


#: Sector granularity unbuffered (O_DIRECT-style) writes are aligned to.
#: 4096 covers every modern block device's logical sector size.
SECTOR_SIZE: int = 4096


class FileBackedSSD(PersistentDevice):
    """A persistent device over a real file.

    ``write`` issues ``os.pwrite`` (buffered by the page cache, like a
    store to an mmapped region); ``persist`` issues ``os.fsync`` (the
    ``msync`` analogue).  The file is pre-allocated to ``capacity`` so
    offsets are stable.

    ``unbuffered=True`` opts into FastPersist-style unbuffered I/O so
    persists stop paying the page cache twice (one copy into the cache,
    one flush to the device).  A second ``O_DIRECT`` descriptor is opened
    when the platform and filesystem allow it; writes whose offset,
    length AND user-buffer address are all sector-aligned go through it,
    bypassing the cache entirely, and everything else (plus any
    filesystem that rejects ``O_DIRECT``) degrades gracefully to the
    buffered descriptor followed by a ``posix_fadvise(DONTNEED)`` on
    persist, which drops the double-cached pages after the fsync.  The
    device then reports ``preferred_align == SECTOR_SIZE`` so
    :func:`repro.core.writer.split_range` keeps writer shares
    sector-aligned and the direct path actually triggers.
    """

    def __init__(
        self,
        path: str,
        capacity: int,
        name: Optional[str] = None,
        *,
        unbuffered: bool = False,
    ) -> None:
        super().__init__(capacity, name or f"ssd:{path}")
        self._path = path
        self._fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            # Grow to capacity but never shrink: truncating an existing
            # region would destroy checkpoints beyond the new size.
            current = os.fstat(self._fd).st_size
            if current < capacity:
                os.truncate(self._fd, capacity)
        except OSError as exc:
            os.close(self._fd)
            raise StorageError(f"cannot allocate {capacity} bytes at {path}") from exc
        self._lock = threading.Lock()
        self.stats = DeviceStats()
        self._unbuffered = bool(unbuffered)
        self._direct_fd: Optional[int] = None
        #: Writes that went through the O_DIRECT descriptor.
        self.direct_write_ops = 0
        #: Writes that wanted the direct path but fell back (misaligned,
        #: O_DIRECT unsupported, or a mid-write EINVAL).
        self.fallback_write_ops = 0
        #: posix_fadvise(DONTNEED) cache drops issued by persist.
        self.cache_drop_ops = 0
        if self._unbuffered:
            direct_flag = getattr(os, "O_DIRECT", 0)
            if direct_flag:
                try:
                    self._direct_fd = os.open(path, os.O_RDWR | direct_flag)
                except OSError:
                    self._direct_fd = None

    @property
    def path(self) -> str:
        """Filesystem path backing the device."""
        return self._path

    @property
    def unbuffered(self) -> bool:
        """True when opened in unbuffered (O_DIRECT-style) mode."""
        return self._unbuffered

    @property
    def direct_io(self) -> bool:
        """True when a real ``O_DIRECT`` descriptor is live (unbuffered
        mode can still be active without one — see the fadvise fallback)."""
        return self._direct_fd is not None

    @property
    def preferred_align(self) -> int:
        return SECTOR_SIZE if self._unbuffered else 1

    @staticmethod
    def _sector_aligned(offset: int, view: memoryview) -> bool:
        if offset % SECTOR_SIZE or len(view) % SECTOR_SIZE:
            return False
        # O_DIRECT also constrains the *user buffer* address.
        address = np.frombuffer(view, dtype=np.uint8).ctypes.data
        return address % SECTOR_SIZE == 0

    def write(self, offset: int, data: Buffer) -> None:
        self._check_open()
        view = as_view(data)
        length = len(view)
        self._check_range(offset, length)
        start = self._obs_start()
        direct = False
        if self._direct_fd is not None and self._sector_aligned(offset, view):
            try:
                # One shot: a short direct write would leave the retry
                # position misaligned, so anything partial falls back.
                if os.pwrite(self._direct_fd, view, offset) == length:
                    direct = True
            except OSError:
                pass
        written = length if direct else 0
        while written < length:
            # Slicing the view for a short-write retry is zero-copy.
            written += os.pwrite(self._fd, view[written:], offset + written)
        with self._lock:
            self.stats.bytes_written += length
            self.stats.write_ops += 1
            if direct:
                self.direct_write_ops += 1
            elif self._unbuffered:
                self.fallback_write_ops += 1
        self._obs_op("write", length, start)

    def read(self, offset: int, length: int) -> bytes:
        self._check_open()
        self._check_range(offset, length)
        start = self._obs_start()
        chunks = []
        remaining = length
        position = offset
        while remaining > 0:
            chunk = os.pread(self._fd, remaining, position)
            if not chunk:
                raise StorageError(f"short read at {position} on {self.name}")
            chunks.append(chunk)
            position += len(chunk)
            remaining -= len(chunk)
        with self._lock:
            self.stats.bytes_read += length
            self.stats.read_ops += 1
        self._obs_op("read", length, start)
        return b"".join(chunks)

    def persist(self, offset: int, length: int) -> None:
        """``fsync`` the file — durability for every outstanding write.

        ``fsync`` is coarser than ``msync(range)`` but strictly stronger,
        so the engine's correctness argument is unaffected.  In
        unbuffered mode the covered pages are additionally dropped from
        the page cache (``posix_fadvise(DONTNEED)``) once durable, so
        writes that had to take the buffered fallback stop occupying DRAM
        a second time.
        """
        self._check_open()
        self._check_range(offset, length)
        start = self._obs_start()
        os.fsync(self._fd)
        if self._unbuffered and hasattr(os, "posix_fadvise"):
            try:
                os.posix_fadvise(
                    self._fd, offset, length, os.POSIX_FADV_DONTNEED
                )
                with self._lock:
                    self.cache_drop_ops += 1
            except OSError:
                pass
        with self._lock:
            self.stats.bytes_persisted += length
            self.stats.persist_ops += 1
        self._obs_op("persist", length, start)

    def close(self) -> None:
        if not self.closed:
            os.close(self._fd)
            if self._direct_fd is not None:
                os.close(self._direct_fd)
                self._direct_fd = None
        super().close()


class InMemorySSD(PersistentDevice):
    """An SSD with an explicit volatile write cache, for crash testing.

    ``write`` lands in the cache view; ``persist`` (msync) copies the
    covered dirty ranges to the durable image.  :meth:`crash` may apply
    any random subset of outstanding cache lines, then freezes the device
    until :meth:`recover`.
    """

    def __init__(
        self,
        capacity: int,
        name: str = "mem-ssd",
        persist_bandwidth: Optional[float] = None,
        write_bandwidth: Optional[float] = None,
    ) -> None:
        super().__init__(capacity, name)
        if write_bandwidth is not None and write_bandwidth <= 0:
            raise StorageError(
                f"write bandwidth must be positive, got {write_bandwidth}"
            )
        self._visible = bytearray(capacity)
        self._durable = bytearray(capacity)
        self._dirty = IntervalSet()
        self._lock = threading.RLock()
        self._crashed = False
        self._persist_bandwidth = persist_bandwidth
        self._write_bandwidth = write_bandwidth
        self.stats = DeviceStats()

    def _check_alive(self) -> None:
        self._check_open()
        if self._crashed:
            raise CrashedDeviceError(f"{self.name} has crashed; call recover()")

    @property
    def crashed(self) -> bool:
        """True between :meth:`crash` and :meth:`recover`."""
        return self._crashed

    @property
    def unpersisted_bytes(self) -> int:
        """Bytes written but not yet covered by a persist barrier."""
        with self._lock:
            return self._dirty.total_bytes()

    def write(self, offset: int, data: Buffer) -> None:
        self._check_alive()
        view = as_view(data)
        length = len(view)
        self._check_range(offset, length)
        start = self._obs_start()
        with self._lock:
            self._visible[offset : offset + length] = view
            self._dirty.add(offset, offset + length)
            self.stats.bytes_written += length
            self.stats.write_ops += 1
        if self._write_bandwidth and length > 0:
            # Model per-write device channel time OUTSIDE the lock:
            # concurrent writer shares (or stripe members) overlap their
            # channel time exactly like independent flash channels, which
            # is what makes parallel-persist scaling measurable on any
            # host, single-core CI included.
            time.sleep(length / self._write_bandwidth)
        self._obs_op("write", length, start)

    def read(self, offset: int, length: int) -> bytes:
        self._check_alive()
        self._check_range(offset, length)
        start = self._obs_start()
        with self._lock:
            self.stats.bytes_read += length
            self.stats.read_ops += 1
            data = bytes(self._visible[offset : offset + length])
        self._obs_op("read", length, start)
        return data

    def persist(self, offset: int, length: int) -> None:
        """``msync`` the range: dirty bytes inside it become durable."""
        self._check_alive()
        self._check_range(offset, length)
        start = self._obs_start()
        with self._lock:
            synced = 0
            for lo, hi in self._dirty.intersect(offset, offset + length):
                self._durable[lo:hi] = self._visible[lo:hi]
                synced += hi - lo
            self._dirty.remove(offset, offset + length)
            self.stats.bytes_persisted += synced
            self.stats.persist_ops += 1
        if self._persist_bandwidth and synced > 0:
            time.sleep(synced / self._persist_bandwidth)
        self._obs_op("persist", synced, start)

    def crash(self, rng: Optional[np.random.Generator] = None) -> None:
        """Power loss: unsynced data survives only for a random subset of
        cache lines (none when ``rng`` is None)."""
        with self._lock:
            if self._crashed:
                raise StorageError(f"{self.name} already crashed")
            if rng is not None:
                for lo, hi in self._dirty:
                    for line_lo, line_hi in split_cache_lines(lo, hi - lo):
                        if rng.random() < 0.5:
                            self._durable[line_lo:line_hi] = self._visible[
                                line_lo:line_hi
                            ]
            self._crashed = True

    def recover(self) -> None:
        """Reset the cache view to the durable image and resume service."""
        with self._lock:
            if not self._crashed:
                raise StorageError(f"{self.name} has not crashed")
            self._visible = bytearray(self._durable)
            self._dirty.clear()
            self._crashed = False

    def durable_snapshot(self) -> bytes:
        """Copy of the durable image (test helper)."""
        with self._lock:
            return bytes(self._durable)
