"""Simulated GPU memory and DMA copy engines.

The real system copies checkpoint state from GPU memory to pinned DRAM
with the GPU's dedicated copy engines (``cudaMemcpyAsync`` on pinned
memory, §3.3), which run in parallel with compute kernels.  Without a GPU,
this module provides the same *interface and concurrency behaviour*:

* :class:`GPUBuffer` — a region of "device" memory backed by a numpy
  array; training code mutates it in place.
* :class:`SimulatedGPU` — an allocator with a capacity limit plus a pool
  of copy-engine worker threads.  ``copy_to_host_async`` snapshots a byte
  range of a buffer into a pinned DRAM chunk and completes asynchronously,
  optionally throttled to a configured PCIe bandwidth so functional
  benchmarks show realistic overlap.

What matters for the checkpoint algorithm is (a) the copy is chunked,
(b) it runs concurrently with "compute" (the Python training loop), and
(c) the engine signals per-chunk completion — all preserved here.
"""

from __future__ import annotations

import concurrent.futures
import threading
import time
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import OutOfSpaceError, StorageError
from repro.storage.dram import PinnedBuffer

#: Effective host-to-device bandwidth of PCIe3 x16 with pinned memory,
#: as on the paper's a2-highgpu-1g VMs.
PCIE3_X16_BANDWIDTH: float = 12.5e9
#: PCIe3 x8, as on the paper's Titan RTX PMEM machine.
PCIE3_X8_BANDWIDTH: float = 6.3e9


class GPUBuffer:
    """A named allocation in simulated GPU memory."""

    def __init__(self, name: str, array: np.ndarray) -> None:
        self.name = name
        self.array = array

    @property
    def nbytes(self) -> int:
        """Allocation size in bytes."""
        return self.array.nbytes

    def as_bytes(self) -> bytes:
        """A copy of the buffer contents as raw bytes."""
        return self.array.tobytes()

    def read_range(self, offset: int, length: int) -> bytes:
        """Raw bytes ``[offset, offset+length)`` of the buffer."""
        flat = self.array.reshape(-1).view(np.uint8)
        if offset < 0 or offset + length > flat.nbytes:
            raise StorageError(
                f"range [{offset}, {offset + length}) outside buffer "
                f"{self.name} of {flat.nbytes} bytes"
            )
        return flat[offset : offset + length].tobytes()


class SimulatedGPU:
    """Device-memory allocator plus asynchronous copy engines.

    ``copy_engines`` mirrors the number of DMA engines (A100s expose
    several); copies submitted beyond that queue behind running ones,
    exactly like streams multiplexed onto hardware engines.
    """

    def __init__(
        self,
        memory_capacity: int = 40 * 1024**3,
        copy_engines: int = 2,
        pcie_bandwidth: Optional[float] = None,
        name: str = "gpu0",
    ) -> None:
        if memory_capacity <= 0:
            raise StorageError("GPU memory capacity must be positive")
        if copy_engines <= 0:
            raise StorageError("need at least one copy engine")
        self.name = name
        self._capacity = memory_capacity
        self._pcie_bandwidth = pcie_bandwidth
        self._buffers: Dict[str, GPUBuffer] = {}
        self._lock = threading.Lock()
        self._engines = concurrent.futures.ThreadPoolExecutor(
            max_workers=copy_engines, thread_name_prefix=f"{name}-copyengine"
        )
        self._inflight: list = []
        self._closed = False

    # ------------------------------------------------------------------
    # memory management

    @property
    def memory_capacity(self) -> int:
        """Total device memory in bytes."""
        return self._capacity

    @property
    def used_bytes(self) -> int:
        """Bytes currently allocated."""
        with self._lock:
            return sum(buf.nbytes for buf in self._buffers.values())

    def alloc(
        self, name: str, shape: Tuple[int, ...], dtype: np.dtype = np.float32
    ) -> GPUBuffer:
        """Allocate a named buffer; raises :class:`OutOfSpaceError` when
        the allocation would exceed device memory."""
        array = np.zeros(shape, dtype=dtype)
        with self._lock:
            if name in self._buffers:
                raise StorageError(f"buffer {name!r} already allocated on {self.name}")
            used = sum(buf.nbytes for buf in self._buffers.values())
            if used + array.nbytes > self._capacity:
                raise OutOfSpaceError(
                    f"allocating {array.nbytes} bytes exceeds {self.name} "
                    f"capacity ({used} of {self._capacity} used)"
                )
            buffer = GPUBuffer(name, array)
            self._buffers[name] = buffer
            return buffer

    def wrap(self, name: str, array: np.ndarray) -> GPUBuffer:
        """Adopt an existing array as device memory (zero-copy)."""
        with self._lock:
            if name in self._buffers:
                raise StorageError(f"buffer {name!r} already allocated on {self.name}")
            used = sum(buf.nbytes for buf in self._buffers.values())
            if used + array.nbytes > self._capacity:
                raise OutOfSpaceError(
                    f"wrapping {array.nbytes} bytes exceeds {self.name} capacity"
                )
            buffer = GPUBuffer(name, array)
            self._buffers[name] = buffer
            return buffer

    def free(self, buffer: GPUBuffer) -> None:
        """Release a buffer."""
        with self._lock:
            if self._buffers.get(buffer.name) is not buffer:
                raise StorageError(f"buffer {buffer.name!r} not allocated here")
            del self._buffers[buffer.name]

    # ------------------------------------------------------------------
    # copy engines

    def copy_to_host_async(
        self,
        buffer: GPUBuffer,
        offset: int,
        length: int,
        destination: PinnedBuffer,
    ) -> "concurrent.futures.Future[int]":
        """Snapshot ``length`` bytes of ``buffer`` at ``offset`` into a
        pinned DRAM chunk via a copy engine.

        The byte range is captured *at submission time* — like issuing a
        DMA from a consistent source — so a training step that mutates the
        buffer after submission does not corrupt the snapshot.  Returns a
        future resolving to the number of bytes copied.
        """
        if self._closed:
            raise StorageError(f"{self.name} copy engines are shut down")
        payload = buffer.read_range(offset, length)
        future = self._engines.submit(self._do_copy, payload, destination)
        with self._lock:
            self._inflight = [f for f in self._inflight if not f.done()]
            self._inflight.append(future)
        return future

    def copy_to_host(
        self, buffer: GPUBuffer, offset: int, length: int, destination: PinnedBuffer
    ) -> int:
        """Synchronous variant of :meth:`copy_to_host_async`."""
        return self.copy_to_host_async(buffer, offset, length, destination).result()

    def _do_copy(self, payload: bytes, destination: PinnedBuffer) -> int:
        if self._pcie_bandwidth:
            time.sleep(len(payload) / self._pcie_bandwidth)
        destination.fill(payload)
        return len(payload)

    def copy_from_host(self, buffer: GPUBuffer, payload: bytes) -> None:
        """Load raw bytes back into a device buffer (used by recovery)."""
        flat = buffer.array.reshape(-1).view(np.uint8)
        if len(payload) != flat.nbytes:
            raise StorageError(
                f"payload of {len(payload)} bytes does not match buffer "
                f"{buffer.name} of {flat.nbytes} bytes"
            )
        if self._pcie_bandwidth:
            time.sleep(len(payload) / self._pcie_bandwidth)
        flat[:] = np.frombuffer(payload, dtype=np.uint8)

    def synchronize(self) -> None:
        """Wait for all in-flight copies (``cudaDeviceSynchronize``)."""
        with self._lock:
            pending = list(self._inflight)
        for future in pending:
            future.result()
        with self._lock:
            self._inflight = [f for f in self._inflight if not f.done()]

    def close(self) -> None:
        """Shut down the copy engines."""
        if not self._closed:
            self._closed = True
            self._engines.shutdown(wait=True)

    def __enter__(self) -> "SimulatedGPU":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
