"""A remote object store with eventual visibility and a failure model.

The cold tier of the tiering subsystem (ROADMAP item 2) is an
object store, not a block device: checkpoints are demoted as **whole
blobs** (one PUT per checkpoint), there is no ``fsync`` — the store
acknowledges a PUT once the blob is accepted — and reads may lag writes
(S3-style eventual visibility).  :class:`RemoteStore` models exactly
those semantics so the tier policy and its crash sweeps exercise the
real failure modes:

* **Whole-blob PUT.**  ``put(key, data)`` replaces the blob atomically;
  there are no partial writes and therefore no torn blobs — the torn
  hazard of the local tiers does not exist here.
* **Eventual visibility.**  With ``visibility_ops=k``, an acknowledged
  blob becomes readable only after ``k`` further store operations (or an
  explicit :meth:`settle`).  Until then ``get``/``list`` behave as if the
  PUT never happened — the window recovery must tolerate.
* **Failure model.**  :meth:`fail` marks the store unavailable: every
  operation raises the typed
  :class:`~repro.errors.RemoteUnavailableError` until :meth:`restore`.
  :meth:`power_fail` models losing the ingest pipeline: blobs
  acknowledged but **not yet visible** are dropped — which is precisely
  why the commit record must never depend on the remote tier.
* **Latency/bandwidth.**  Optional per-op latency and byte-rate sleeps
  for benchmarks; both default off so tests stay fast and deterministic.

The op-count visibility window (rather than wall-clock) keeps crash
sweeps deterministic: the same op sequence always yields the same
visible set.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

from repro.errors import RemoteUnavailableError, StorageError
from repro.obs.metrics import M, MetricsRegistry


class RemoteStore:
    """An in-process object store with object-store (not device) semantics.

    Deliberately **not** a :class:`~repro.storage.device.PersistentDevice`:
    there are no offsets, no ``persist`` barrier, and no capacity-checked
    ranges — forcing blob semantics through the block-device interface
    would hide exactly the differences the tier policy must handle.
    """

    def __init__(
        self,
        name: str = "remote",
        *,
        latency: float = 0.0,
        bandwidth: Optional[float] = None,
        visibility_ops: int = 0,
    ) -> None:
        if latency < 0:
            raise StorageError(f"latency must be >= 0, got {latency}")
        if bandwidth is not None and bandwidth <= 0:
            raise StorageError(
                f"bandwidth must be positive, got {bandwidth}"
            )
        if visibility_ops < 0:
            raise StorageError(
                f"visibility_ops must be >= 0, got {visibility_ops}"
            )
        self.name = name
        self._latency = latency
        self._bandwidth = bandwidth
        self._visibility_ops = visibility_ops
        self._lock = threading.Lock()
        self._blobs: Dict[str, bytes] = {}
        #: key -> store-op index at which the blob becomes visible.
        self._pending: Dict[str, int] = {}
        self._op_index = 0
        self._available = True
        self.put_ops = 0
        self.get_ops = 0
        self.failed_ops = 0
        self._metrics: Optional[MetricsRegistry] = None

    # ------------------------------------------------------------------
    # instrumentation

    def attach_metrics(self, metrics: MetricsRegistry,
                       label: Optional[str] = None) -> None:
        """Report PUT/GET/outage counters into ``metrics``."""
        self._metrics = metrics

    def _inc(self, name: str, amount: float = 1.0) -> None:
        if self._metrics is not None:
            self._metrics.inc(name, amount)

    # ------------------------------------------------------------------
    # internal bookkeeping (call with the lock held)

    def _check_available(self, op: str) -> None:
        # No metrics calls here: this runs with the store lock held, and
        # the registry takes its own lock (PC009 lock ordering).  Callers
        # count the failure after releasing the lock.
        if not self._available:
            self.failed_ops += 1
            raise RemoteUnavailableError(
                f"remote store {self.name!r} unavailable ({op} refused)"
            )

    def _advance(self) -> None:
        """One store operation elapsed: settle blobs whose window closed."""
        self._op_index += 1
        ready = [
            key for key, at in self._pending.items() if at <= self._op_index
        ]
        for key in ready:
            del self._pending[key]

    def _sleep_for(self, nbytes: int) -> None:
        delay = self._latency
        if self._bandwidth:
            delay += nbytes / self._bandwidth
        if delay > 0:
            time.sleep(delay)

    # ------------------------------------------------------------------
    # object API

    def put(self, key: str, data: bytes) -> None:
        """Store ``data`` under ``key`` — whole-blob, atomic, no fsync.

        The PUT is acknowledged (returns) once the blob is accepted; with
        a visibility window it is not yet readable, and a
        :meth:`power_fail` before the window closes loses it.
        """
        if not key:
            raise StorageError("blob key must be non-empty")
        view = bytes(data)
        try:
            with self._lock:
                self._check_available("put")
                self._advance()
                self._blobs[key] = view
                if self._visibility_ops > 0:
                    self._pending[key] = self._op_index + self._visibility_ops
                self.put_ops += 1
        except RemoteUnavailableError:
            self._inc(M.REMOTE_FAILURES)
            raise
        self._inc(M.REMOTE_PUTS)
        self._inc(M.REMOTE_PUT_BYTES, len(view))
        self._sleep_for(len(view))

    def get(self, key: str) -> bytes:
        """Fetch a blob; ``KeyError`` when absent or not yet visible."""
        try:
            with self._lock:
                self._check_available("get")
                self._advance()
                self.get_ops += 1
                if key not in self._blobs or key in self._pending:
                    data = None
                else:
                    data = self._blobs[key]
        except RemoteUnavailableError:
            self._inc(M.REMOTE_FAILURES)
            raise
        self._inc(M.REMOTE_GETS)
        if data is None:
            raise KeyError(key)
        self._sleep_for(len(data))
        return data

    def list(self, prefix: str = "") -> List[str]:
        """Visible keys under ``prefix``, sorted."""
        try:
            with self._lock:
                self._check_available("list")
                self._advance()
                return sorted(
                    key
                    for key in self._blobs
                    if key.startswith(prefix) and key not in self._pending
                )
        except RemoteUnavailableError:
            self._inc(M.REMOTE_FAILURES)
            raise

    def delete(self, key: str) -> None:
        """Remove a blob (idempotent, like object-store DELETE)."""
        try:
            with self._lock:
                self._check_available("delete")
                self._advance()
                self._blobs.pop(key, None)
                self._pending.pop(key, None)
        except RemoteUnavailableError:
            self._inc(M.REMOTE_FAILURES)
            raise

    # ------------------------------------------------------------------
    # failure model

    def settle(self) -> None:
        """Force every acknowledged blob visible (the window elapsed)."""
        with self._lock:
            self._pending.clear()

    @property
    def available(self) -> bool:
        """False between :meth:`fail` and :meth:`restore`."""
        return self._available

    def fail(self) -> None:
        """Outage: every operation raises ``RemoteUnavailableError``."""
        with self._lock:
            self._available = False

    def restore(self) -> None:
        """End the outage; previously visible blobs are intact."""
        with self._lock:
            self._available = True

    def power_fail(self) -> None:
        """Lose the ingest pipeline: acknowledged-but-invisible blobs
        vanish; visible blobs survive (they were replicated)."""
        with self._lock:
            for key in list(self._pending):
                del self._pending[key]
                self._blobs.pop(key, None)

    # ------------------------------------------------------------------
    # introspection

    def __len__(self) -> int:
        with self._lock:
            return len(self._blobs) - len(
                [k for k in self._pending if k in self._blobs]
            )

    def visible_keys(self) -> List[str]:
        """Alias of ``list("")`` that skips the availability gate (test
        helper: inspect the durable set after an outage)."""
        with self._lock:
            return sorted(
                key for key in self._blobs if key not in self._pending
            )
