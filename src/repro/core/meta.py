"""Checkpoint metadata records and their on-device encoding.

The algorithm of §4.1 manipulates three kinds of metadata:

* :class:`CheckMeta` — the paper's ``check_meta``: the checkpoint's global
  counter plus the location of its data (here, a slot index and payload
  length).  One lives in memory per in-flight checkpoint; the committed
  one is also encoded into the device's *commit record* (``CHECK_ADDR``).
* Slot headers — one per storage slot, written and persisted *after* the
  slot's payload so that a header with a matching CRC proves the payload
  underneath it is complete.  This is the on-media form of the paper's
  "persist the data and the checkpoint that points to this data before
  CHECK_ADDR is updated" ordering requirement.
* The commit record — a single 64-byte CRC-protected record at a fixed
  offset; updating it is the durable analogue of the CAS on CHECK_ADDR.

All records carry a magic number and a CRC32 so that recovery can detect
torn or partial writes: a record that fails validation is treated as
absent, never trusted.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Optional

from repro.errors import CorruptCheckpointError

#: Fixed size of every metadata record on the device.
RECORD_SIZE: int = 64

_SLOT_MAGIC = b"PCCHKSL1"
_COMMIT_MAGIC = b"PCCHKCR1"

# magic(8s) counter(Q) slot(I) payload_len(Q) payload_crc(I) step(Q) pad, crc(I)
_RECORD_STRUCT = struct.Struct("<8sQIQIQ20x")
_CRC_STRUCT = struct.Struct("<I")
assert _RECORD_STRUCT.size + _CRC_STRUCT.size == RECORD_SIZE


@dataclass(frozen=True)
class CheckMeta:
    """Metadata of one checkpoint: its order and where its data lives.

    ``counter`` is the value drawn from the global atomic counter (unique,
    totally ordered; 0 is reserved for "no checkpoint").  ``slot`` is the
    storage slot index holding the payload; ``payload_len`` its length in
    bytes and ``payload_crc`` the CRC32 of the payload for validation at
    recovery time.
    """

    counter: int
    slot: int
    payload_len: int
    payload_crc: int
    #: Training iteration the checkpoint captures.  Not used by the
    #: single-node protocol, but distributed recovery intersects steps
    #: across workers to find the newest globally consistent checkpoint.
    step: int = 0

    def __post_init__(self) -> None:
        if self.counter < 0:
            raise CorruptCheckpointError(f"negative counter {self.counter}")
        if self.slot < 0:
            raise CorruptCheckpointError(f"negative slot {self.slot}")
        if self.payload_len < 0:
            raise CorruptCheckpointError(f"negative length {self.payload_len}")

    def is_newer_than(self, other: Optional["CheckMeta"]) -> bool:
        """Order by global counter; ``None`` means "no checkpoint"."""
        return other is None or self.counter > other.counter


def _encode(magic: bytes, meta: CheckMeta) -> bytes:
    body = _RECORD_STRUCT.pack(
        magic, meta.counter, meta.slot, meta.payload_len, meta.payload_crc, meta.step
    )
    return body + _CRC_STRUCT.pack(zlib.crc32(body))


def _decode(magic: bytes, raw: bytes) -> Optional[CheckMeta]:
    if len(raw) != RECORD_SIZE:
        return None
    body, (crc,) = raw[: _RECORD_STRUCT.size], _CRC_STRUCT.unpack(
        raw[_RECORD_STRUCT.size :]
    )
    if zlib.crc32(body) != crc:
        return None
    got_magic, counter, slot, payload_len, payload_crc, step = _RECORD_STRUCT.unpack(
        body
    )
    if got_magic != magic:
        return None
    return CheckMeta(
        counter=counter,
        slot=slot,
        payload_len=payload_len,
        payload_crc=payload_crc,
        step=step,
    )


def encode_slot_header(meta: CheckMeta) -> bytes:
    """Serialize a slot header (64 bytes, CRC-protected)."""
    return _encode(_SLOT_MAGIC, meta)


def decode_slot_header(raw: bytes) -> Optional[CheckMeta]:
    """Parse a slot header; ``None`` for anything torn, blank, or foreign."""
    return _decode(_SLOT_MAGIC, raw)


def encode_commit_record(meta: CheckMeta) -> bytes:
    """Serialize the CHECK_ADDR commit record (64 bytes, CRC-protected)."""
    return _encode(_COMMIT_MAGIC, meta)


def decode_commit_record(raw: bytes) -> Optional[CheckMeta]:
    """Parse the commit record; ``None`` when torn, blank, or foreign."""
    return _decode(_COMMIT_MAGIC, raw)


def payload_crc(payload: bytes) -> int:
    """CRC32 used to validate checkpoint payloads at recovery."""
    return zlib.crc32(payload)
