"""Debug-mode runtime sanitizer for the checkpoint engine.

The engine's docstring states four concurrency invariants; the test
suite checks them at quiescent points, but an interleaving bug can hold
briefly mid-flight and still corrupt a recovery.  When sanitizing is
enabled (``REPRO_SANITIZE=1`` in the environment, or
``CheckpointEngine(..., sanitize=True)``) the engine swaps its atomic
primitives for the ``Sanitized*`` wrappers below, which assert the
invariants on *every transition*:

1. **Committed-counter monotonicity** — a successful CAS on
   ``CHECK_ADDR`` never installs a smaller counter, and the global
   ticket counter never moves backwards.
2. **Committed slot ∉ free queue** — the slot named by the committed
   record is never enqueued as free, no slot is freed twice, and a
   newly committed slot is not simultaneously sitting in the queue.
3. **One slot returned per checkpoint** — every finished ticket gives
   back exactly one slot (the superseded one on success, its own on
   defeat or abort); the very first commit ever returns none because
   nothing was superseded.
4. **At-least-one-valid-checkpoint** — once anything has committed,
   ``CHECK_ADDR`` can never be observed or reset to ``None``.

Violations raise :class:`~repro.errors.InvariantViolationError`
immediately, at the transition that broke the invariant, with the
shadow state in the message.  The wrappers add one small mutex per
engine; they are meant for tests and debugging, not the hot path.
"""

from __future__ import annotations

import os
import threading
from typing import Optional, Set

from repro.core.atomics import AtomicCounter, AtomicReference
from repro.core.freelist import EMPTY, SlotQueue
from repro.core.meta import CheckMeta
from repro.errors import InvariantViolationError

#: Environment switch: any of these values enables the sanitizer.
ENV_VAR = "REPRO_SANITIZE"
_TRUTHY = {"1", "true", "yes", "on"}


def sanitize_requested() -> bool:
    """True when ``REPRO_SANITIZE`` asks for the sanitizer."""
    return os.environ.get(ENV_VAR, "").strip().lower() in _TRUTHY


class EngineSanitizer:
    """Shadow bookkeeping shared by one engine's sanitized primitives."""

    def __init__(
        self, num_slots: int, recovered: Optional[CheckMeta] = None
    ) -> None:
        self._lock = threading.RLock()
        self._num_slots = num_slots
        self._free: Set[int] = set()
        self._committed_slot: Optional[int] = (
            recovered.slot if recovered else None
        )
        self._committed_counter: int = recovered.counter if recovered else 0
        self._ever_committed = recovered is not None
        #: ticket counter -> slots released on its behalf so far
        self._releases: dict = {}
        self.checks_performed = 0

    def _fail(self, message: str) -> None:
        with self._lock:
            state = (
                f" [committed_slot={self._committed_slot} "
                f"committed_counter={self._committed_counter} "
                f"free={sorted(self._free)}]"
            )
        raise InvariantViolationError(message + state)

    def _tick(self) -> None:
        self.checks_performed += 1

    # ------------------------------------------------------------------
    # free-queue transitions (invariants 2 and 3)

    def note_enqueue(self, slot: int) -> None:
        with self._lock:
            self._tick()
            if slot == self._committed_slot:
                self._fail(
                    f"invariant 2 violated: committed slot {slot} was "
                    f"returned to the free queue"
                )
            if slot in self._free:
                self._fail(
                    f"invariant 3 violated: slot {slot} freed twice "
                    f"(already in the free queue)"
                )
            if not 0 <= slot < self._num_slots:
                self._fail(f"slot {slot} outside [0, {self._num_slots})")
            self._free.add(slot)

    def note_dequeue(self, slot: int) -> None:
        with self._lock:
            self._tick()
            if slot not in self._free:
                self._fail(
                    f"invariant 2/3 violated: dequeued slot {slot} was "
                    f"not tracked as free"
                )
            self._free.discard(slot)

    # ------------------------------------------------------------------
    # counter / CHECK_ADDR transitions (invariants 1 and 4)

    def note_counter_step(self, old: int, new: int) -> None:
        with self._lock:
            self._tick()
            if new < old:
                self._fail(
                    f"invariant 1 violated: global counter moved backwards "
                    f"({old} -> {new})"
                )

    def note_commit_pointer(
        self, old: Optional[CheckMeta], new: Optional[CheckMeta]
    ) -> None:
        with self._lock:
            self._tick()
            if new is None:
                if self._ever_committed:
                    self._fail(
                        "invariant 4 violated: CHECK_ADDR reset to None "
                        "after a checkpoint had committed"
                    )
                return
            if old is not None and new.counter <= old.counter:
                self._fail(
                    f"invariant 1 violated: committed counter moved "
                    f"{old.counter} -> {new.counter}"
                )
            if new.slot in self._free:
                self._fail(
                    f"invariant 2 violated: newly committed slot "
                    f"{new.slot} is sitting in the free queue"
                )
            self._committed_slot = new.slot
            self._committed_counter = new.counter
            self._ever_committed = True

    # ------------------------------------------------------------------
    # per-ticket accounting (invariant 3)

    def on_begin(self, counter: int, slot: int) -> None:
        with self._lock:
            self._tick()
            if counter in self._releases:
                self._fail(f"duplicate ticket counter {counter} issued")
            if counter <= 0:
                self._fail(f"ticket counter must be positive, got {counter}")
            self._releases[counter] = 0

    def on_release(self, counter: Optional[int], slot: int) -> None:
        """A slot released on behalf of ticket ``counter`` (None during
        engine construction, when the initial free list is populated)."""
        if counter is None:
            return
        with self._lock:
            self._tick()
            count = self._releases.get(counter, 0) + 1
            self._releases[counter] = count
            if count > 1:
                self._fail(
                    f"invariant 3 violated: checkpoint {counter} returned "
                    f"{count} slots to the queue"
                )

    def on_ticket_done(self, counter: int, first_commit: bool) -> None:
        with self._lock:
            self._tick()
            released = self._releases.pop(counter, 0)
            expected = 0 if first_commit else 1
            if released != expected:
                self._fail(
                    f"invariant 3 violated: checkpoint {counter} finished "
                    f"having returned {released} slot(s), expected {expected}"
                )

    @property
    def ever_committed(self) -> bool:
        """Whether the shadow state has seen any commit yet.

        Read-side callers must sample this *before* loading CHECK_ADDR:
        a commit that lands between the load and the assertion must not
        turn a legitimately-``None`` read into a false violation.
        """
        with self._lock:
            return self._ever_committed

    def assert_recovery_point(
        self,
        meta: Optional[CheckMeta],
        expect_commit: Optional[bool] = None,
    ) -> None:
        """Invariant 4 at a read: after any commit a recovery point exists.

        ``expect_commit`` is the value of :attr:`ever_committed` sampled
        *before* ``meta`` was loaded; when omitted, the current shadow
        state is used (only safe when no commit can race the read).
        """
        with self._lock:
            self._tick()
            if expect_commit is None:
                expect_commit = self._ever_committed
            if expect_commit and meta is None:
                self._fail(
                    "invariant 4 violated: no committed checkpoint visible "
                    "after a commit had succeeded"
                )


class SanitizedAtomicCounter(AtomicCounter):
    """AtomicCounter asserting monotonicity on every transition."""

    def __init__(self, initial: int, sanitizer: EngineSanitizer) -> None:
        super().__init__(initial)
        self._sanitizer = sanitizer

    def fetch_add(self, amount: int = 1) -> int:
        old = super().fetch_add(amount)
        self._sanitizer.note_counter_step(old, old + amount)
        return old

    def add_fetch(self, amount: int = 1) -> int:
        new = super().add_fetch(amount)
        self._sanitizer.note_counter_step(new - amount, new)
        return new

    def store(self, value: int) -> None:
        old = self.load()
        self._sanitizer.note_counter_step(old, value)
        super().store(value)


class SanitizedAtomicReference(AtomicReference):
    """CHECK_ADDR wrapper asserting commit-pointer invariants."""

    def __init__(
        self, initial: Optional[CheckMeta], sanitizer: EngineSanitizer
    ) -> None:
        super().__init__(initial)
        self._sanitizer = sanitizer

    def compare_and_swap(self, expected, new) -> bool:
        # The swap and its shadow note must be one atomic step: with a
        # window between them, a later commit can CAS over this one AND
        # enqueue this one's superseded slot before this note runs, so
        # the delayed note sees its freshly committed slot "in the free
        # queue" — a false invariant-2 violation.  Serialising through
        # the sanitizer lock keeps notes in physical CAS order (the
        # sanitizer is debug-mode; commit throughput is not a concern).
        with self._sanitizer._lock:  # noqa: SLF001
            swapped = super().compare_and_swap(expected, new)
            if swapped:
                self._sanitizer.note_commit_pointer(expected, new)
        return swapped

    def store(self, value) -> None:
        with self._sanitizer._lock:  # noqa: SLF001
            self._sanitizer.note_commit_pointer(self.load(), value)
            super().store(value)


class SanitizedSlotQueue(SlotQueue):
    """Free queue wrapper tracking shadow membership of every slot."""

    def __init__(self, capacity: int, sanitizer: EngineSanitizer) -> None:
        super().__init__(capacity)
        self._sanitizer = sanitizer

    def enqueue(self, value: int) -> None:
        self._sanitizer.note_enqueue(value)
        super().enqueue(value)

    def dequeue(self) -> int:
        value = super().dequeue()
        if value != EMPTY:
            self._sanitizer.note_dequeue(value)
        return value
