"""Distributed checkpoint coordination (§3.1 and §4.1).

In multi-node training each worker checkpoints its own model partition
(pipeline stage or FSDP shard) to its own persistent device, so PCcheck
must guarantee the *globally consistent* property: a recovery point is a
training step for which **every** worker holds a durable checkpoint.

The paper's protocol: after a worker's successful CAS, it sends its
checkpoint id to rank 0 and waits; once rank 0 hears from all peers it
releases them, each updates its local ``peer_check``, and only then is the
superseded slot recycled.  Holding the old slot across the barrier is the
load-bearing detail — it guarantees that at any crash instant the most
recent step *all* workers completed is still intact on every device.

This module implements the protocol with threads standing in for nodes,
in two layers:

* :class:`CheckpointBarrier` — the rank-0 gather/release primitive, one
  round per checkpoint step.  Arrival (:meth:`CheckpointBarrier.arrive`)
  is non-blocking; waiting is a separate, optional step.  Rounds are
  garbage-collected when they complete or fail (memory is bounded by
  in-flight rounds plus a fixed tombstone window), and a timed-out round
  is marked *failed* under the lock so every participant — including a
  straggler arriving late — observes the same outcome and arrival count.
* :class:`DistributedCoordinator` — the pipelined round lifecycle.  It
  plugs into each worker's engine through the ``post_cas_hook`` (arrival
  registration) and the ``slot_custodian`` (deferred recycling of the
  superseded slot), so the committing thread never blocks on stragglers;
  a watcher thread declares overdue rounds failed, reclaims the held
  slots on every engine, and transitions the group to *degraded* mode
  until :meth:`DistributedCoordinator.reform` re-forms the world.

On top of those, :class:`DistributedWorker` wraps one engine (blocking or
pipelined per call site), :class:`DistributedOrchestrator` wires the
coordination into the capture/persist pipeline of
:class:`~repro.core.orchestrator.PCcheckOrchestrator`, and
:func:`recover_consistent` performs cross-device recovery: scan every
worker's slots for valid checkpoints, intersect the step sets, and load
the newest common step — re-validating every payload's CRC after the
chunked read, with the same retry semantics as the single-device
:func:`~repro.core.recovery.recover`.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.engine import CheckpointEngine
from repro.core.layout import DeviceLayout
from repro.core.meta import CheckMeta, payload_crc
from repro.core.recovery import (
    DEFAULT_READ_CHUNK,
    PersistentIterator,
    _from_commit_record,
)
from repro.core.reshard import reshard_shards
from repro.core.sharding import is_shard
from repro.errors import (
    CorruptCheckpointError,
    DegradedGroupError,
    DistributedError,
    DistributedTimeoutError,
    NoCheckpointError,
)
from repro.obs.metrics import M, MetricsRegistry
from repro.obs.trace import NULL_TRACER

#: Round outcome states (``RoundOutcome.status`` / tombstone records).
ROUND_PENDING = "pending"
ROUND_COMPLETED = "completed"
ROUND_FAILED = "failed"

#: How many settled (completed or failed) rounds the barrier remembers.
#: Bounds tombstone memory while still rejecting duplicate / straggler
#: arrivals for any recently settled step.
DEFAULT_ROUND_HISTORY = 64

#: Poll period of the coordinator's timeout watcher thread.
WATCHER_POLL_SECONDS = 0.02


@dataclass(frozen=True)
class RoundOutcome:
    """The settled result of one coordination round."""

    step: int
    status: str  #: ``completed`` or ``failed``
    arrived: Tuple[int, ...]  #: ranks that reported, in arrival order
    missing: Tuple[int, ...]  #: ranks that never reported (failed rounds)
    duration: float  #: first arrival → settle, in seconds
    reason: str = ""  #: human-readable failure reason


class _Round:
    """Mutable in-flight round state; settles exactly once."""

    __slots__ = (
        "step", "arrived", "status", "started", "deadline",
        "event", "outcome", "span",
    )

    def __init__(self, step: int, started: float,
                 deadline: Optional[float]) -> None:
        self.step = step
        self.arrived: List[int] = []
        self.status = ROUND_PENDING
        self.started = started
        self.deadline = deadline
        self.event = threading.Event()
        self.outcome: Optional[RoundOutcome] = None
        self.span = None


class BarrierRound:
    """A participant's handle on one coordination round.

    Returned by :meth:`CheckpointBarrier.arrive`; survives the barrier's
    round garbage collection, so late waiters still observe the settled
    outcome.
    """

    def __init__(self, barrier: "CheckpointBarrier", round_: _Round,
                 rank: int) -> None:
        self._barrier = barrier
        self._round = round_
        self.rank = rank

    @property
    def step(self) -> int:
        """The training step this round coordinates."""
        return self._round.step

    @property
    def settled(self) -> bool:
        """True once the round completed or failed."""
        return self._round.event.is_set()

    @property
    def outcome(self) -> Optional[RoundOutcome]:
        """The settled outcome, or ``None`` while pending."""
        return self._round.outcome

    def wait(self, timeout: Optional[float] = None) -> RoundOutcome:
        """Block until the round settles; raise if it failed.

        Without an explicit ``timeout`` the round's own deadline governs:
        when it passes, this waiter marks the round failed *under the
        barrier lock* so every participant observes one consistent
        arrival count, then raises
        :class:`~repro.errors.DistributedTimeoutError`.
        """
        return self._barrier._wait(self._round, self.rank, timeout)


class CheckpointBarrier:
    """Rank-0 style coordination: one release round per checkpoint step.

    Every worker reports ``step`` after its CAS via :meth:`arrive` (or
    the blocking :meth:`synchronize`); a round completes once all
    ``world_size`` workers reported the same step.  Workers may be
    several rounds apart when checkpoints are issued concurrently, so
    rounds are keyed by step and settle independently.

    Settled rounds are garbage-collected immediately: memory is bounded
    by in-flight rounds plus a fixed window of tombstones
    (``history``, default :data:`DEFAULT_ROUND_HISTORY`) kept to reject
    duplicate arrivals for completed steps and straggler arrivals for
    failed ones.
    """

    def __init__(
        self,
        world_size: int,
        timeout: Optional[float] = 30.0,
        *,
        history: int = DEFAULT_ROUND_HISTORY,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
    ) -> None:
        if world_size < 1:
            raise DistributedError(f"world size must be >= 1, got {world_size}")
        if history < 1:
            raise DistributedError(f"round history must be >= 1, got {history}")
        self._world_size = world_size
        self._timeout = timeout
        self._history = history
        # A Condition (not a bare Lock) so wait_open() can block until a
        # round for a step exists — waiters may line up before any rank
        # has committed (the pipelined checkpoint_async → wait_consistent
        # flow).  Used as a plain mutex everywhere else.
        self._lock = threading.Condition()
        self._rounds: Dict[int, _Round] = {}
        #: step -> settled RoundOutcome, oldest first, bounded by history.
        self._settled: "OrderedDict[int, RoundOutcome]" = OrderedDict()
        #: Ranks a shrink evicted from the world (see :meth:`resize`);
        #: arrivals from them get a re-form-aware error message.
        self._evicted_ranks: Set[int] = set()
        #: Human-readable note about the last :meth:`resize`, woven into
        #: out-of-range arrival errors so a shrunk world explains itself.
        self._resize_note = ""
        self._listeners: List[Tuple[Callable, Callable]] = []
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._tracer = tracer if tracer is not None else NULL_TRACER
        #: Latest step for which a full round completed (the paper's
        #: globally consistent ``peer_check`` value).
        self.peer_check: int = -1

    @property
    def world_size(self) -> int:
        """Number of participating workers."""
        return self._world_size

    @property
    def timeout(self) -> Optional[float]:
        """Round deadline in seconds from first arrival (None: no bound)."""
        return self._timeout

    @property
    def metrics(self) -> MetricsRegistry:
        """The registry barrier telemetry reports into."""
        return self._metrics

    @property
    def in_flight_rounds(self) -> int:
        """Rounds currently pending — the barrier's only unbounded state."""
        with self._lock:
            return len(self._rounds)

    @property
    def settled_rounds(self) -> int:
        """Tombstones currently remembered (bounded by ``history``)."""
        with self._lock:
            return len(self._settled)

    def add_listener(
        self,
        on_complete: Callable[[RoundOutcome], None],
        on_fail: Callable[[RoundOutcome], None],
    ) -> None:
        """Register settle callbacks (invoked outside the barrier lock)."""
        with self._lock:
            self._listeners.append((on_complete, on_fail))

    # ------------------------------------------------------------------
    # arrival / waiting

    def arrive(self, rank: int, step: int) -> BarrierRound:
        """Report ``step`` from ``rank`` without blocking.

        Returns a :class:`BarrierRound` handle; the returned round may
        already be settled — a straggler arriving for a round its peers
        abandoned gets the *failed* outcome (and does not advance
        ``peer_check``) instead of resurrecting the round.  Duplicate
        arrivals for an in-flight or completed round raise
        :class:`~repro.errors.DistributedError`.
        """
        to_settle: Optional[_Round] = None
        with self._lock:
            # Bounds-checked under the lock so an arrival can never read
            # a half-updated world size while resize() runs.
            if not 0 <= rank < self._world_size:
                if rank in self._evicted_ranks:
                    raise DistributedError(
                        f"rank {rank} was evicted when {self._resize_note}; "
                        f"evicted ranks {sorted(self._evicted_ranks)} are no "
                        f"longer part of the world of size {self._world_size} "
                        f"— arrival for step {step} rejected"
                    )
                raise DistributedError(
                    f"rank {rank} outside world of size {self._world_size}"
                    + (f" (note: {self._resize_note})"
                       if self._resize_note else "")
                )
            settled = self._settled.get(step)
            if settled is not None:
                if settled.status == ROUND_FAILED:
                    # Straggler: peers already declared this round dead.
                    tomb = _Round(step, time.monotonic(), None)
                    tomb.status = ROUND_FAILED
                    tomb.outcome = settled
                    tomb.event.set()
                    return BarrierRound(self, tomb, rank)
                raise DistributedError(
                    f"rank {rank} reported step {step} twice "
                    f"(round already completed)"
                )
            round_ = self._rounds.get(step)
            if round_ is None:
                now = time.monotonic()
                deadline = (
                    now + self._timeout if self._timeout is not None else None
                )
                round_ = _Round(step, now, deadline)
                round_.span = self._tracer.begin(
                    "barrier_round", step=step, world_size=self._world_size
                )
                self._rounds[step] = round_
                self._metrics.set_gauge(
                    M.BARRIER_ROUNDS_INFLIGHT, len(self._rounds)
                )
                self._lock.notify_all()  # wake wait_open() waiters
            if rank in round_.arrived:
                raise DistributedError(
                    f"rank {rank} reported step {step} twice"
                )
            round_.arrived.append(rank)
            if len(round_.arrived) == self._world_size:
                to_settle = round_
                self._settle_locked(round_, ROUND_COMPLETED)
        if to_settle is not None:
            self._notify(to_settle.outcome)
        return BarrierRound(self, round_, rank)

    def synchronize(self, rank: int, step: int) -> None:
        """Report ``step`` from ``rank``; block until all peers reported it.

        The legacy blocking entry point: equivalent to
        ``arrive(rank, step).wait()``.
        """
        started = time.monotonic()
        handle = self.arrive(rank, step)
        try:
            handle.wait()
        finally:
            self._metrics.observe(
                M.BARRIER_WAIT_SECONDS,
                time.monotonic() - started,
                rank=str(rank),
            )

    def fail_round(self, step: int, reason: str) -> Optional[RoundOutcome]:
        """Declare the round for ``step`` failed (if still pending).

        Returns the settled outcome, or ``None`` when no such round is
        in flight.  Used by the coordinator's watcher and by
        :meth:`DistributedCoordinator.reform`.
        """
        with self._lock:
            round_ = self._rounds.get(step)
            if round_ is None or round_.status != ROUND_PENDING:
                return None
            self._settle_locked(round_, ROUND_FAILED, reason=reason)
        self._notify(round_.outcome)
        return round_.outcome

    def fail_all_pending(self, reason: str) -> List[RoundOutcome]:
        """Declare every in-flight round failed, atomically.

        All pending rounds settle under one lock acquisition, so no
        concurrent :meth:`arrive` or waiter can observe some rounds
        failed and others still pending across a group re-form.
        Returns the settled outcomes (listeners are notified outside
        the lock, as always).
        """
        settled: List[_Round] = []
        with self._lock:
            for round_ in list(self._rounds.values()):
                if round_.status == ROUND_PENDING:
                    self._settle_locked(round_, ROUND_FAILED, reason=reason)
                    settled.append(round_)
        outcomes = [round_.outcome for round_ in settled]
        for outcome in outcomes:
            self._notify(outcome)
        return outcomes

    def resize(self, world_size: int, reason: str = "the world was resized"
               ) -> List[RoundOutcome]:
        """Change the world size; fails every in-flight round first.

        The settle-and-resize happens under one lock acquisition: a
        concurrent :meth:`arrive` either runs before (old world, old
        rounds) or after (new world, no rounds) — never against a
        half-updated world.  A round opened for the old world cannot
        complete against the new count, so pending rounds are failed
        with ``reason`` rather than left to mis-count.

        Shrinking records the evicted ranks (``world_size <= rank <
        old``): their later arrivals raise a
        :class:`~repro.errors.DistributedError` that names the re-form
        instead of a bare bounds error.  Growing re-admits previously
        evicted ranks that are back inside the world.
        """
        if world_size < 1:
            raise DistributedError(
                f"world size must be >= 1, got {world_size}"
            )
        settled: List[_Round] = []
        with self._lock:
            for round_ in list(self._rounds.values()):
                if round_.status == ROUND_PENDING:
                    self._settle_locked(round_, ROUND_FAILED, reason=reason)
                    settled.append(round_)
            old = self._world_size
            self._world_size = world_size
            if world_size != old:
                self._resize_note = (
                    f"the group re-formed from world size {old} to "
                    f"{world_size}"
                )
            if world_size < old:
                self._evicted_ranks.update(range(world_size, old))
            self._evicted_ranks -= set(range(world_size))
        outcomes = [round_.outcome for round_ in settled]
        for outcome in outcomes:
            self._notify(outcome)
        return outcomes

    @property
    def evicted_ranks(self) -> Tuple[int, ...]:
        """Ranks removed from the world by a shrinking :meth:`resize`."""
        with self._lock:
            return tuple(sorted(self._evicted_ranks))

    def is_pending(self, step: int) -> bool:
        """True while a round for ``step`` is open and unsettled."""
        with self._lock:
            return step in self._rounds

    def participant(self, step: int, rank: int = -1
                    ) -> Optional[BarrierRound]:
        """A waitable handle on the in-flight round for ``step``.

        Returns ``None`` when no round for ``step`` is currently open
        (check :meth:`round_outcome` for a settled one).  ``rank`` only
        labels the failure reason if this participant's deadline is the
        one that fails the round.
        """
        with self._lock:
            round_ = self._rounds.get(step)
        if round_ is None:
            return None
        return BarrierRound(self, round_, rank)

    def expire_overdue(self) -> List[RoundOutcome]:
        """Fail every pending round whose deadline has passed."""
        now = time.monotonic()
        expired: List[_Round] = []
        with self._lock:
            for round_ in list(self._rounds.values()):
                if round_.deadline is not None and now >= round_.deadline:
                    self._settle_locked(
                        round_, ROUND_FAILED,
                        reason=f"timed out after {self._timeout:g}s",
                    )
                    expired.append(round_)
        outcomes = []
        for round_ in expired:
            self._notify(round_.outcome)
            outcomes.append(round_.outcome)
        return outcomes

    def round_outcome(self, step: int) -> Optional[RoundOutcome]:
        """The settled outcome for ``step`` if still remembered."""
        with self._lock:
            round_ = self._rounds.get(step)
            if round_ is not None:
                return round_.outcome
            return self._settled.get(step)

    def wait_open(self, step: int, timeout: Optional[float] = None) -> bool:
        """Block until a round for ``step`` is known (open or settled).

        The pipelined flow issues ``checkpoint_async(step)`` and then
        waits on the step before any rank's commit has opened the round;
        this lets that waiter line up instead of racing the first
        arrival.  Returns ``False`` if no round appeared in time.
        """
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        with self._lock:
            while step not in self._rounds and step not in self._settled:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                # Condition.wait releases the lock while blocked.
                self._lock.wait(remaining)
            return True

    # ------------------------------------------------------------------
    # internals

    def _settle_locked(
        self, round_: _Round, status: str, reason: str = ""
    ) -> None:
        """Transition a pending round to its final state.  Caller holds
        the lock; listener notification happens outside it."""
        assert round_.status == ROUND_PENDING
        round_.status = status
        arrived = tuple(round_.arrived)
        missing = tuple(
            rank for rank in range(self._world_size) if rank not in arrived
        )
        duration = time.monotonic() - round_.started
        round_.outcome = RoundOutcome(
            step=round_.step,
            status=status,
            arrived=arrived,
            missing=missing,
            duration=duration,
            reason=reason,
        )
        if status == ROUND_COMPLETED:
            self.peer_check = max(self.peer_check, round_.step)
            self._metrics.inc(M.BARRIER_ROUNDS_COMPLETED)
        else:
            self._metrics.inc(M.BARRIER_ROUNDS_FAILED)
        self._metrics.observe(M.BARRIER_ROUND_SECONDS, duration)
        # GC: drop the round, remember a bounded tombstone.
        del self._rounds[round_.step]
        self._metrics.set_gauge(M.BARRIER_ROUNDS_INFLIGHT, len(self._rounds))
        self._settled[round_.step] = round_.outcome
        while len(self._settled) > self._history:
            self._settled.popitem(last=False)
        if round_.span is not None:
            self._tracer.end(
                round_.span, status=status, arrived=len(arrived),
                missing=list(missing), reason=reason or None,
            )
            round_.span = None
        round_.event.set()

    def _notify(self, outcome: RoundOutcome) -> None:
        with self._lock:
            listeners = list(self._listeners)
        for on_complete, on_fail in listeners:
            callback = (
                on_complete if outcome.status == ROUND_COMPLETED else on_fail
            )
            callback(outcome)

    def _wait(
        self, round_: _Round, rank: int, timeout: Optional[float]
    ) -> RoundOutcome:
        """Block on a round until it settles; raise on failure."""
        deadline = round_.deadline
        if timeout is not None:
            deadline = time.monotonic() + timeout
        while True:
            if deadline is None:
                round_.event.wait()
            else:
                remaining = deadline - time.monotonic()
                if not round_.event.wait(max(remaining, 0.0)):
                    # Our deadline passed.  Settle the round as failed
                    # under the lock — unless it settled concurrently.
                    with self._lock:
                        if round_.status == ROUND_PENDING:
                            self._settle_locked(
                                round_, ROUND_FAILED,
                                reason=(
                                    f"rank {rank} timed out waiting for "
                                    f"peers" if rank >= 0 else
                                    "deadline passed before all peers "
                                    "arrived"
                                ),
                            )
                            settled_here = True
                        else:
                            settled_here = False
                    if settled_here:
                        self._notify(round_.outcome)
            outcome = round_.outcome
            if outcome is None:
                continue
            if outcome.status == ROUND_COMPLETED:
                return outcome
            raise DistributedTimeoutError(
                f"barrier round failed at step {outcome.step}: only "
                f"{len(outcome.arrived)} of {self._world_size} workers "
                f"arrived (missing ranks {list(outcome.missing)})"
                + (f" — {outcome.reason}" if outcome.reason else "")
            )


# ----------------------------------------------------------------------
# the pipelined coordinator


class _RankCustodian:
    """Per-engine adapter for the engine's ``slot_custodian`` protocol."""

    def __init__(self, coordinator: "DistributedCoordinator", rank: int) -> None:
        self._coordinator = coordinator
        self._rank = rank
        self._engine: Optional[CheckpointEngine] = None

    def bind(self, engine: CheckpointEngine) -> None:
        self._engine = engine

    def take_superseded(self, meta: CheckMeta, slot: int) -> bool:
        assert self._engine is not None, "custodian used before bind()"
        return self._coordinator._take_superseded(
            self._rank, self._engine, meta, slot
        )


class DistributedCoordinator:
    """Group-wide coordination state: rounds, held slots, failure mode.

    One coordinator is shared by all workers of a group.  It moves the
    §4.1 round off the committing thread:

    * ``post_cas_hook`` → :meth:`_on_commit` registers the rank's arrival
      (non-blocking);
    * ``slot_custodian`` → :meth:`_take_superseded` defers recycling of
      the superseded slot until the round settles;
    * a watcher thread declares overdue rounds failed; round completion
      releases every held slot, round failure *reclaims* them (the group
      has agreed the step can never become globally consistent) and
      flips the group to degraded mode — new checkpoints raise
      :class:`~repro.errors.DegradedGroupError` until :meth:`reform`.
    """

    def __init__(
        self,
        world_size: Optional[int] = None,
        timeout: Optional[float] = 30.0,
        *,
        barrier: Optional[CheckpointBarrier] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
    ) -> None:
        if barrier is None:
            if world_size is None:
                raise DistributedError(
                    "need a world size or an existing barrier"
                )
            barrier = CheckpointBarrier(
                world_size, timeout=timeout, metrics=metrics, tracer=tracer
            )
        self._barrier = barrier
        self._metrics = barrier.metrics if metrics is None else metrics
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._lock = threading.RLock()
        #: step -> [(rank, engine, slot)] held across that step's round.
        self._holds: Dict[int, List[Tuple[int, CheckpointEngine, int]]] = {}
        self._degraded = False
        self._degraded_reason = ""
        self._failed_ranks: Set[int] = set()
        self._watcher: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._closed = False
        barrier.add_listener(self._on_round_complete, self._on_round_failed)

    @classmethod
    def for_barrier(cls, barrier: CheckpointBarrier) -> "DistributedCoordinator":
        """The coordinator bound to ``barrier``, created on first use.

        Lets legacy call sites that share a bare barrier object
        transparently share one coordinator (and its held-slot
        bookkeeping) as well.
        """
        with _ADOPTION_LOCK:
            coordinator = getattr(barrier, "_coordinator", None)
            if coordinator is None:
                coordinator = cls(barrier=barrier)
                barrier._coordinator = coordinator  # noqa: SLF001
            return coordinator

    # ------------------------------------------------------------------
    # group state

    @property
    def barrier(self) -> CheckpointBarrier:
        """The underlying gather/release primitive."""
        return self._barrier

    @property
    def world_size(self) -> int:
        """Number of participating workers."""
        return self._barrier.world_size

    @property
    def peer_check(self) -> int:
        """Latest globally consistent step (§4.1)."""
        return self._barrier.peer_check

    @property
    def metrics(self) -> MetricsRegistry:
        """The registry coordination telemetry reports into."""
        return self._metrics

    @property
    def degraded(self) -> bool:
        """True after a round failed; checkpointing is suspended."""
        with self._lock:
            return self._degraded

    @property
    def degraded_reason(self) -> str:
        """Why the group degraded (empty while healthy)."""
        with self._lock:
            return self._degraded_reason

    @property
    def failed_ranks(self) -> Tuple[int, ...]:
        """Ranks that missed a failed round since the last reform."""
        with self._lock:
            return tuple(sorted(self._failed_ranks))

    def check_active(self) -> None:
        """Raise :class:`~repro.errors.DegradedGroupError` if degraded."""
        with self._lock:
            if self._degraded:
                raise DegradedGroupError(
                    "checkpointing suspended: " + self._degraded_reason
                    + "; call reform() once the group re-forms"
                )

    def reform(self, world_size: Optional[int] = None) -> None:
        """Re-form the group after a failure: fail any in-flight rounds,
        reclaim their held slots, clear the degraded flag, and optionally
        resize the world (e.g. a replacement node joined, spot preemption
        shrank the fleet, or scale-up grew it — elastic recovery then
        re-partitions the checkpoint via
        :func:`recover_consistent` with ``world_size``).

        Uses only the barrier's public, internally locked APIs
        (:meth:`CheckpointBarrier.fail_all_pending`,
        :meth:`CheckpointBarrier.resize`), so the re-form can never race
        a concurrent arrival or waiter reading a half-updated world.
        """
        with self._lock:
            failed = tuple(sorted(self._failed_ranks))
        reason = "group re-formed"
        if failed:
            reason += f" (failed ranks {list(failed)} evicted)"
        if world_size is not None:
            # resize() fails every pending round under the same lock
            # acquisition that installs the new world size.
            self._barrier.resize(world_size, reason=reason)
        else:
            self._barrier.fail_all_pending(reason)
        with self._lock:
            self._degraded = False
            self._degraded_reason = ""
            self._failed_ranks.clear()

    def wait_round(
        self, step: int, timeout: Optional[float] = None, rank: int = -1
    ) -> RoundOutcome:
        """Block until the round for ``step`` settles; raise on failure.

        The round need not exist yet — a waiter lining up right after
        ``checkpoint_async(step)``, before any rank committed, blocks
        until the first arrival opens it (bounded by ``timeout``, else
        the barrier's round deadline).  For steps whose round already
        settled and was garbage-collected, the tombstoned outcome is
        consulted instead.  ``rank`` only labels the failure reason when
        this waiter's deadline is the one that fails the round.
        """
        outcome = self._barrier.round_outcome(step)
        if outcome is None:
            started = time.monotonic()
            open_timeout = (
                timeout if timeout is not None else self._barrier.timeout
            )
            if not self._barrier.wait_open(step, open_timeout):
                raise DistributedTimeoutError(
                    f"no rank committed step {step} within "
                    f"{open_timeout:g}s — no coordination round opened"
                )
            remaining = timeout
            if remaining is not None:
                remaining = max(0.0, remaining - (time.monotonic() - started))
            outcome = self._barrier.round_outcome(step)
            if outcome is None:
                handle = self._barrier.participant(step, rank=rank)
                if handle is None:
                    raise DistributedError(
                        f"no coordination round is known for step {step}"
                    )
                return handle.wait(remaining)
        if outcome.status == ROUND_COMPLETED:
            return outcome
        raise DistributedTimeoutError(
            f"barrier round failed at step {outcome.step}: only "
            f"{len(outcome.arrived)} of {self.world_size} workers arrived "
            f"(missing ranks {list(outcome.missing)})"
            + (f" — {outcome.reason}" if outcome.reason else "")
        )

    def close(self) -> None:
        """Stop the timeout watcher (held slots stay reclaimable)."""
        self._closed = True
        self._stop.set()
        watcher = self._watcher
        if watcher is not None:
            watcher.join(timeout=2.0)

    def __enter__(self) -> "DistributedCoordinator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # engine wiring

    def bind_engine(
        self,
        rank: int,
        layout: DeviceLayout,
        writer_threads: int = 3,
        recovered: Optional[CheckMeta] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
    ) -> CheckpointEngine:
        """Build a rank's engine wired into this coordinator."""
        custodian = _RankCustodian(self, rank)
        engine = CheckpointEngine(
            layout,
            writer_threads=writer_threads,
            recovered=recovered,
            post_cas_hook=lambda meta, _rank=rank: self._on_commit(_rank, meta),
            slot_custodian=custodian,
            metrics=metrics,
            tracer=tracer,
        )
        custodian.bind(engine)
        return engine

    def _on_commit(self, rank: int, meta: CheckMeta) -> None:
        """Post-CAS hook: register arrival without blocking.

        In degraded mode the arrival is dropped — the round could never
        complete — and the subsequent ``take_superseded`` declines
        custody so the slot recycles immediately.
        """
        with self._lock:
            if self._degraded or self._closed:
                return
        self._ensure_watcher()
        self._barrier.arrive(rank, meta.step)

    def _take_superseded(
        self, rank: int, engine: CheckpointEngine, meta: CheckMeta, slot: int
    ) -> bool:
        """Slot-custodian hook: defer recycling until the round settles.

        Serialized against round settlement through the coordinator
        lock: either the hold is registered before the settle handler
        runs (which then releases it), or the round is observed settled
        and custody is declined (the engine recycles immediately).
        """
        step = meta.step
        with self._lock:
            if self._degraded or self._closed:
                return False
            outcome = self._barrier.round_outcome(step)
            if outcome is not None:
                # Round already settled (completed just now, or a failed
                # tombstone): nothing to hold across.
                return False
            # Nested acquisition is deliberate and safe: the lock order
            # is always coordinator -> barrier (settle handlers run
            # outside the barrier lock), and checking pending-ness while
            # still holding our lock is what guarantees the settle
            # handler cannot pop the holds list before we append.
            if not self._barrier.is_pending(step):
                return False
            self._holds.setdefault(step, []).append((rank, engine, slot))
            return True

    # ------------------------------------------------------------------
    # round settlement

    def _on_round_complete(self, outcome: RoundOutcome) -> None:
        with self._lock:
            holds = self._holds.pop(outcome.step, [])
        for _rank, engine, slot in holds:
            engine.release_held_slot(slot)

    def _on_round_failed(self, outcome: RoundOutcome) -> None:
        with self._lock:
            holds = self._holds.pop(outcome.step, [])
            self._degraded = True
            self._degraded_reason = (
                f"coordination round for step {outcome.step} failed "
                f"({outcome.reason or 'peer lost'}; missing ranks "
                f"{list(outcome.missing)})"
            )
            self._failed_ranks.update(outcome.missing)
        # The group has agreed step `outcome.step` can never become
        # globally consistent: reclaim, don't leak.  The payloads stay
        # durable until a post-reform checkpoint overwrites the slots.
        for _rank, engine, slot in holds:
            engine.release_held_slot(slot)

    # ------------------------------------------------------------------
    # timeout watcher

    def _ensure_watcher(self) -> None:
        if self._barrier.timeout is None:
            return  # no deadline: blocking waiters are the only clock
        with self._lock:
            if self._watcher is not None or self._closed:
                return
            self._watcher = threading.Thread(
                target=self._watch, name="pccheck-coordinator", daemon=True
            )
            self._watcher.start()

    def _watch(self) -> None:
        timeout = self._barrier.timeout
        poll = min(WATCHER_POLL_SECONDS, timeout / 4 if timeout else 1.0)
        while not self._stop.wait(poll):
            self._barrier.expire_overdue()


#: Guards lazy coordinator adoption for bare CheckpointBarrier objects.
_ADOPTION_LOCK = threading.Lock()


def _coerce_coordinator(group) -> DistributedCoordinator:
    """Accept either a coordinator or a legacy bare barrier."""
    if isinstance(group, DistributedCoordinator):
        return group
    if isinstance(group, CheckpointBarrier):
        return DistributedCoordinator.for_barrier(group)
    raise DistributedError(
        f"expected a DistributedCoordinator or CheckpointBarrier, "
        f"got {type(group).__name__}"
    )


@dataclass
class DistributedWorker:
    """One worker's engine bound to the group coordinator."""

    rank: int
    engine: CheckpointEngine
    coordinator: DistributedCoordinator
    #: When True, :meth:`checkpoint` returns as soon as the local commit
    #: is durable; the coordination round settles in the background and
    #: slot recycling is deferred until it does (§4.1, pipelined).
    pipelined: bool = False

    @property
    def barrier(self) -> CheckpointBarrier:
        """The group's gather/release primitive (compat accessor)."""
        return self.coordinator.barrier

    @classmethod
    def create(
        cls,
        rank: int,
        layout: DeviceLayout,
        group,
        writer_threads: int = 3,
        recovered: Optional[CheckMeta] = None,
        pipelined: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
    ) -> "DistributedWorker":
        """Build a worker whose engine coordinates after every CAS.

        ``group`` is a :class:`DistributedCoordinator` or (legacy) a
        bare :class:`CheckpointBarrier`, which is adopted into a shared
        coordinator.
        """
        coordinator = _coerce_coordinator(group)
        engine = coordinator.bind_engine(
            rank,
            layout,
            writer_threads=writer_threads,
            recovered=recovered,
            metrics=metrics,
            tracer=tracer,
        )
        return cls(
            rank=rank,
            engine=engine,
            coordinator=coordinator,
            pipelined=pipelined,
        )

    def checkpoint(self, payload, step: int):
        """Checkpoint this worker's partition for ``step``.

        Blocking mode (default): on return either all peers committed
        ``step`` too, or the round failed
        (:class:`~repro.errors.DistributedTimeoutError`) — and in the
        failure case the superseded slot was *reclaimed*, not leaked,
        because the group agreed the step is dead.

        Pipelined mode: returns as soon as the local commit is durable;
        use :meth:`wait_consistent` (or watch
        ``coordinator.peer_check``) for the global outcome.
        """
        self.coordinator.check_active()
        started = time.monotonic()
        result = self.engine.checkpoint(payload, step=step)
        if self.pipelined or not result.committed:
            # Superseded checkpoints never coordinated (no CAS win, no
            # arrival), and pipelined callers don't wait here.
            return result
        try:
            self.coordinator.wait_round(step, rank=self.rank)
        finally:
            self.engine.metrics.observe(
                M.BARRIER_WAIT_SECONDS,
                time.monotonic() - started,
                rank=str(self.rank),
            )
        return result

    def wait_consistent(
        self, step: int, timeout: Optional[float] = None
    ) -> RoundOutcome:
        """Block until ``step``'s round settles; raise if it failed."""
        return self.coordinator.wait_round(step, timeout, rank=self.rank)


class DistributedOrchestrator:
    """A rank's capture/persist pipeline participating in the group round.

    Wraps a :class:`~repro.core.orchestrator.PCcheckOrchestrator` whose
    engine is wired into the group's :class:`DistributedCoordinator`:
    the persist stage's commit registers the arrival and hands the
    superseded slot to the coordinator without blocking, so neither the
    training thread (``checkpoint_async`` returns immediately) nor the
    persist worker ever waits on a straggling peer.
    """

    def __init__(self, rank: int, orchestrator, coordinator) -> None:
        from repro.core.orchestrator import PCcheckOrchestrator

        if not isinstance(orchestrator, PCcheckOrchestrator):
            raise DistributedError(
                "DistributedOrchestrator wraps a PCcheckOrchestrator"
            )
        self.rank = rank
        self._orchestrator = orchestrator
        self.coordinator = _coerce_coordinator(coordinator)

    @classmethod
    def create(
        cls,
        rank: int,
        layout: DeviceLayout,
        group,
        *,
        pool=None,
        num_chunks: int = 4,
        chunk_size: int = 1 << 20,
        writer_threads: int = 3,
        config=None,
        recovered: Optional[CheckMeta] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
    ) -> "DistributedOrchestrator":
        """Build a rank's orchestrator wired into the group coordinator."""
        from repro.core.orchestrator import PCcheckOrchestrator
        from repro.storage.dram import DRAMBufferPool

        coordinator = _coerce_coordinator(group)
        engine = coordinator.bind_engine(
            rank,
            layout,
            writer_threads=writer_threads,
            recovered=recovered,
            metrics=metrics,
            tracer=tracer,
        )
        if pool is None:
            pool = DRAMBufferPool(num_chunks=num_chunks, chunk_size=chunk_size)
        orchestrator = PCcheckOrchestrator(engine, pool, config=config)
        return cls(rank, orchestrator, coordinator)

    @property
    def orchestrator(self):
        """The wrapped rank-local pipeline."""
        return self._orchestrator

    @property
    def engine(self) -> CheckpointEngine:
        """The rank's coordinated engine."""
        return self._orchestrator.engine

    def checkpoint_async(self, source, step: int):
        """Start a concurrent checkpoint; never blocks on the barrier.

        Raises :class:`~repro.errors.DegradedGroupError` when the group
        is degraded (checkpointing suspended).
        """
        self.coordinator.check_active()
        return self._orchestrator.checkpoint_async(source, step)

    def wait_consistent(
        self, step: int, timeout: Optional[float] = None
    ) -> RoundOutcome:
        """Block until ``step`` is globally consistent; raise on failure."""
        return self.coordinator.wait_round(step, timeout, rank=self.rank)

    def wait_for_snapshots(self) -> float:
        """Delegate the T→U consistency stall to the wrapped pipeline."""
        return self._orchestrator.wait_for_snapshots()

    def drain(self, timeout: Optional[float] = None,
              return_exceptions: bool = False):
        """Wait for every outstanding local checkpoint to finish."""
        return self._orchestrator.drain(
            timeout=timeout, return_exceptions=return_exceptions
        )

    def close(self) -> None:
        """Drain and shut the rank-local pipeline down."""
        self._orchestrator.close()

    def __enter__(self) -> "DistributedOrchestrator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# cross-device recovery


@dataclass
class ConsistentCheckpoint:
    """The newest globally consistent checkpoint across all workers.

    ``payloads`` is index-aligned with *reader* rank; ``metas`` and
    ``sources`` stay aligned with the *writer* ranks whose devices the
    checkpoint was read from.  The two worlds coincide unless elastic
    recovery re-partitioned the state (``resharded``), in which case
    ``len(payloads) == world_size`` may differ from ``len(metas)``.
    """

    step: int
    payloads: List[bytes]  # index-aligned with reader rank
    metas: List[CheckMeta]  # index-aligned with writer rank
    #: Per-writer-rank location mechanism: "commit-record" or "slot-scan".
    sources: List[str] = field(default_factory=list)
    #: Reader world the payloads are partitioned for.
    world_size: int = 0
    #: Writer world that produced the checkpoint.
    writer_world: int = 0
    #: True when the payloads were re-partitioned onto a different world.
    resharded: bool = False

    def __post_init__(self) -> None:
        if self.world_size == 0:
            self.world_size = len(self.payloads)
        if self.writer_world == 0:
            self.writer_world = len(self.metas)


def valid_checkpoints(layout: DeviceLayout) -> List[CheckMeta]:
    """All complete checkpoints currently on a device (slot scan).

    Includes superseded-but-not-yet-overwritten checkpoints — those are
    what make a globally consistent step recoverable when workers crashed
    at different points.
    """
    found: List[CheckMeta] = []
    for header in layout.read_all_slot_headers():
        if header is None or header.payload_len > layout.payload_capacity:
            continue
        payload = layout.read_payload(header)
        if payload_crc(payload) == header.payload_crc:
            found.append(header)
    return found


def _candidate_steps(layout: DeviceLayout) -> Tuple[Dict[int, CheckMeta], Dict[int, str]]:
    """Map step -> best validated meta for one rank's device.

    The commit-record fast path is preferred for its step — it is the
    rank's authoritative newest commit — with the slot scan filling in
    the superseded-but-still-durable older steps.
    """
    by_step: Dict[int, CheckMeta] = {}
    source: Dict[int, str] = {}
    for meta in valid_checkpoints(layout):
        existing = by_step.get(meta.step)
        if existing is None or meta.counter > existing.counter:
            by_step[meta.step] = meta
            source[meta.step] = "slot-scan"
    committed = _from_commit_record(layout)
    if committed is not None:
        by_step[committed.step] = committed
        source[committed.step] = "commit-record"
    return by_step, source


def _reshard_payloads(
    step: int, payloads: List[bytes], world_size: int
) -> List[bytes]:
    """Re-partition N writers' shard payloads onto ``world_size`` readers.

    The payloads must be self-describing shards; the global index is
    rebuilt from their headers and re-partitioned through
    :func:`~repro.core.reshard.reshard_shards`.
    """
    plain = [rank for rank, p in enumerate(payloads) if not is_shard(p)]
    if plain:
        raise DistributedError(
            f"cannot recover step {step} onto a world of {world_size}: "
            f"rank payloads {plain} are not self-describing shards, so "
            f"there is no global index to re-partition them with "
            f"(checkpoint was written by {len(payloads)} ranks; shard "
            f"with repro.core.sharding.shard_payload to enable elastic "
            f"recovery)"
        )
    try:
        return reshard_shards(payloads, world_size)
    except CorruptCheckpointError as exc:
        raise DistributedError(
            f"cannot re-partition step {step} onto a world of "
            f"{world_size}: {exc}"
        ) from exc


def recover_consistent(
    layouts: Sequence[DeviceLayout],
    chunk_size: int = DEFAULT_READ_CHUNK,
    max_attempts: int = 8,
    metrics: Optional[MetricsRegistry] = None,
    world_size: Optional[int] = None,
) -> ConsistentCheckpoint:
    """Find and load the newest step every worker holds a checkpoint for.

    Each payload's CRC is re-validated *after* the chunked
    :meth:`~repro.core.recovery.PersistentIterator.read_all` — when
    recovery runs concurrently with writers (an online reader), a slot
    located via the scan can be recycled and overwritten between
    locating and reading it.  A failed re-validation retries the whole
    selection against the region's newer state, mirroring
    :func:`~repro.core.recovery.recover`; after ``max_attempts`` the
    error names the rank whose payload kept failing.

    ``world_size`` asks for **elastic recovery**: the returned payloads
    are re-partitioned onto that many reader ranks (again as
    self-describing shards), regardless of how many writers produced
    the checkpoint.  This needs the payloads to be sharded
    (:func:`~repro.core.sharding.shard_payload`) so the global index
    can be rebuilt; recovering a non-sharded checkpoint onto a
    different world raises :class:`~repro.errors.DistributedError`.
    ``world_size`` equal to the writer count with an unchanged layout
    returns the payloads bit-identical to the non-elastic path.

    Raises :class:`~repro.errors.NoCheckpointError` when the step sets do
    not intersect (e.g. a device was wiped).
    """
    if not layouts:
        raise DistributedError("need at least one worker layout")
    if world_size is not None and world_size < 1:
        raise DistributedError(
            f"target world size must be >= 1, got {world_size}"
        )
    started = time.monotonic()
    unstable: Optional[Tuple[int, int]] = None  # (rank, step)
    for _attempt in range(max_attempts):
        per_worker: List[Dict[int, CheckMeta]] = []
        per_worker_sources: List[Dict[int, str]] = []
        for layout in layouts:
            by_step, source = _candidate_steps(layout)
            per_worker.append(by_step)
            per_worker_sources.append(source)
        common: Set[int] = set(per_worker[0])
        for by_step in per_worker[1:]:
            common &= set(by_step)
        if not common:
            held = [sorted(by_step) for by_step in per_worker]
            raise NoCheckpointError(
                "no training step has a valid checkpoint on every worker "
                f"(per-rank steps: {held})"
            )
        step = max(common)
        payloads: List[bytes] = []
        metas: List[CheckMeta] = []
        sources: List[str] = []
        unstable = None
        for rank, (layout, by_step) in enumerate(zip(layouts, per_worker)):
            meta = by_step[step]
            payload = PersistentIterator(
                layout, meta, chunk_size=chunk_size
            ).read_all()
            if payload_crc(payload) != meta.payload_crc:
                # Overwritten (or torn) under the reader: rescan.
                unstable = (rank, step)
                break
            payloads.append(payload)
            metas.append(meta)
            sources.append(per_worker_sources[rank][step])
        if unstable is None:
            out_payloads = payloads
            resharded = False
            if world_size is not None and world_size != len(payloads):
                out_payloads = _reshard_payloads(step, payloads, world_size)
                resharded = True
            if metrics is not None:
                metrics.observe(
                    M.RECOVERY_SECONDS, time.monotonic() - started
                )
                metrics.inc(M.RECOVERY_ATTEMPTS, _attempt + 1)
                metrics.inc(
                    M.RECOVERY_BYTES, sum(len(p) for p in payloads)
                )
            return ConsistentCheckpoint(
                step=step, payloads=out_payloads, metas=metas,
                sources=sources,
                world_size=len(out_payloads),
                writer_world=len(metas),
                resharded=resharded,
            )
    rank, step = unstable  # type: ignore[misc]
    raise DistributedError(
        f"rank {rank}'s payload for step {step} failed CRC re-validation "
        f"{max_attempts} times (slot kept changing under the reader); "
        f"its device {layouts[rank].device.name} is unstable or corrupt"
    )
