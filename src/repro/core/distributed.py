"""Distributed checkpoint coordination (§3.1 and §4.1).

In multi-node training each worker checkpoints its own model partition
(pipeline stage or FSDP shard) to its own persistent device, so PCcheck
must guarantee the *globally consistent* property: a recovery point is a
training step for which **every** worker holds a durable checkpoint.

The paper's protocol: after a worker's successful CAS, it sends its
checkpoint id to rank 0 and waits; once rank 0 hears from all peers it
releases them, each updates its local ``peer_check``, and only then is the
superseded slot recycled.  Holding the old slot across the barrier is the
load-bearing detail — it guarantees that at any crash instant the most
recent step *all* workers completed is still intact on every device.

This module implements the protocol with threads standing in for nodes:

* :class:`CheckpointBarrier` — the rank-0 gather/release round, one round
  per checkpoint step.
* :class:`DistributedWorker` — wires the barrier into a worker's engine
  through the engine's ``post_cas_hook``.
* :func:`recover_consistent` — cross-device recovery: scan every worker's
  slots for valid checkpoints, intersect the step sets, and load the
  newest common step.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from repro.core.engine import CheckpointEngine
from repro.core.layout import DeviceLayout
from repro.core.meta import CheckMeta, payload_crc
from repro.core.recovery import PersistentIterator
from repro.errors import DistributedError, NoCheckpointError


class CheckpointBarrier:
    """Rank-0 style coordination: one release round per checkpoint step.

    Every worker calls :meth:`synchronize(rank, step)` after its CAS; the
    call returns once all ``world_size`` workers reported the same step.
    Workers may be several rounds apart only if checkpoints are issued
    concurrently, so rounds are keyed by step and released independently.
    """

    def __init__(self, world_size: int, timeout: Optional[float] = 30.0) -> None:
        if world_size < 1:
            raise DistributedError(f"world size must be >= 1, got {world_size}")
        self._world_size = world_size
        self._timeout = timeout
        self._lock = threading.Lock()
        self._rounds: Dict[int, Set[int]] = {}
        self._released: Dict[int, threading.Event] = {}
        #: Latest step for which a full round completed (the paper's
        #: globally consistent ``peer_check`` value).
        self.peer_check: int = -1

    @property
    def world_size(self) -> int:
        """Number of participating workers."""
        return self._world_size

    def synchronize(self, rank: int, step: int) -> None:
        """Report ``step`` from ``rank``; block until all peers reported it."""
        if not 0 <= rank < self._world_size:
            raise DistributedError(
                f"rank {rank} outside world of size {self._world_size}"
            )
        with self._lock:
            members = self._rounds.setdefault(step, set())
            if rank in members:
                raise DistributedError(
                    f"rank {rank} reported step {step} twice"
                )
            members.add(rank)
            event = self._released.setdefault(step, threading.Event())
            if len(members) == self._world_size:
                self.peer_check = max(self.peer_check, step)
                event.set()
        if not event.wait(self._timeout):
            raise DistributedError(
                f"barrier timeout at step {step}: only "
                f"{len(self._rounds.get(step, set()))} of {self._world_size} "
                f"workers arrived"
            )


@dataclass
class DistributedWorker:
    """One worker's engine bound to the group barrier."""

    rank: int
    engine: CheckpointEngine
    barrier: CheckpointBarrier

    @classmethod
    def create(
        cls,
        rank: int,
        layout: DeviceLayout,
        barrier: CheckpointBarrier,
        writer_threads: int = 3,
        recovered: Optional[CheckMeta] = None,
    ) -> "DistributedWorker":
        """Build a worker whose engine synchronizes after every CAS."""

        def post_cas(meta: CheckMeta) -> None:
            barrier.synchronize(rank, meta.step)

        engine = CheckpointEngine(
            layout,
            writer_threads=writer_threads,
            recovered=recovered,
            post_cas_hook=post_cas,
        )
        return cls(rank=rank, engine=engine, barrier=barrier)

    def checkpoint(self, payload: bytes, step: int):
        """Checkpoint this worker's partition for ``step``.

        Blocks through the coordination round, so on return either all
        peers committed ``step`` too, or the barrier timed out (a peer
        failed) and the superseded slot was *not* recycled.
        """
        return self.engine.checkpoint(payload, step=step)


@dataclass
class ConsistentCheckpoint:
    """The newest globally consistent checkpoint across all workers."""

    step: int
    payloads: List[bytes]  # index-aligned with worker rank
    metas: List[CheckMeta]


def valid_checkpoints(layout: DeviceLayout) -> List[CheckMeta]:
    """All complete checkpoints currently on a device (slot scan).

    Includes superseded-but-not-yet-overwritten checkpoints — those are
    what make a globally consistent step recoverable when workers crashed
    at different points.
    """
    found: List[CheckMeta] = []
    for header in layout.read_all_slot_headers():
        if header is None or header.payload_len > layout.payload_capacity:
            continue
        payload = layout.read_payload(header)
        if payload_crc(payload) == header.payload_crc:
            found.append(header)
    return found


def recover_consistent(layouts: Sequence[DeviceLayout]) -> ConsistentCheckpoint:
    """Find and load the newest step every worker holds a checkpoint for.

    Raises :class:`~repro.errors.NoCheckpointError` when the step sets do
    not intersect (e.g. a device was wiped).
    """
    if not layouts:
        raise DistributedError("need at least one worker layout")
    per_worker: List[Dict[int, CheckMeta]] = []
    for layout in layouts:
        by_step: Dict[int, CheckMeta] = {}
        for meta in valid_checkpoints(layout):
            existing = by_step.get(meta.step)
            if existing is None or meta.counter > existing.counter:
                by_step[meta.step] = meta
        per_worker.append(by_step)
    common: Set[int] = set(per_worker[0])
    for by_step in per_worker[1:]:
        common &= set(by_step)
    if not common:
        raise NoCheckpointError(
            "no training step has a valid checkpoint on every worker"
        )
    step = max(common)
    metas = [by_step[step] for by_step in per_worker]
    payloads = [
        PersistentIterator(layout, meta).read_all()
        for layout, meta in zip(layouts, metas)
    ]
    return ConsistentCheckpoint(step=step, payloads=payloads, metas=metas)
