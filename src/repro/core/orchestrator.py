"""The PCcheck orchestrator: concurrent checkpoint sessions (§3.1).

The orchestrator coordinates the life of a checkpoint (Figure 5):

1. the trainer reaches a checkpoint boundary and calls
   :meth:`PCcheckOrchestrator.checkpoint_async`;
2. a *capture* task copies the state chunk-by-chunk into pinned DRAM
   buffers from the pool (step ③, GPU copy engines);
3. a *persist* task drains the captured chunks in order through the
   engine's writer threads to consecutive slot offsets (step ④), releasing
   each buffer as soon as its chunk is durable;
4. the engine's commit protocol publishes the checkpoint.

Up to N checkpoints run these pipelines concurrently — the engine's free
slot queue naturally enforces the bound, and a request arriving while all
N are busy blocks, which is the training stall PCcheck's configuration
tool sizes N and f to avoid.

Consistency contract: the trainer calls :meth:`wait_for_snapshots` before
every weight update, so captures always read a stable state version.  The
orchestrator tracks the cumulative time spent in that wait (the stall the
paper's Figure 6 shows between T and U) plus slot-wait and buffer-wait
stalls for the sensitivity benchmarks.

Failure contract (see docs/ALGORITHM.md, "Failure paths and what
survives them"): a capture failure aborts the ticket cleanly; a persist
failure poisons its capture stage, drains the hand-off queue back into
the buffer pool, and either recycles the slot (local errors) or leaves
the ticket dangling and marks the orchestrator fatal (a crashed device —
power-loss semantics).  ``wait_for_snapshots``, ``drain`` and ``close``
always terminate, whatever failed.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.chunking import plan_chunks
from repro.core.config import PCcheckConfig
from repro.core.engine import CheckpointEngine, CheckpointResult
from repro.core.snapshot import SnapshotSource
from repro.errors import (
    CrashedDeviceError,
    EngineClosedError,
    EngineError,
    SlotWaitTimeout,
)
from repro.obs.metrics import M, MetricsRegistry
from repro.obs.trace import (
    STATUS_ABORTED,
    STATUS_COMMITTED,
    STATUS_DANGLING,
    STATUS_SUPERSEDED,
)
from repro.storage.dram import DRAMBufferPool, PinnedBuffer


@dataclass
class CheckpointHandle:
    """Tracks one asynchronous checkpoint request."""

    step: int
    counter: Optional[int] = None
    snapshot_done: threading.Event = field(default_factory=threading.Event)
    #: Root lifecycle span (``checkpoint``), when tracing is on.
    span: Optional[object] = None
    _future: "Future[CheckpointResult]" = field(default_factory=Future)
    _started: float = 0.0
    _finished: bool = False

    def wait(self, timeout: Optional[float] = None) -> CheckpointResult:
        """Block until the checkpoint committed (or was superseded)."""
        return self._future.result(timeout)

    def done(self) -> bool:
        """True once the commit protocol finished."""
        return self._future.done()

    def add_done_callback(self, fn) -> None:
        """Run ``fn(handle)`` once this checkpoint settles — committed,
        superseded, or failed.  Fires immediately when already settled.
        Callbacks run on the pipeline thread that settled the handle (or
        the caller's, when already done), so keep them short and never
        block in them; exceptions they raise are swallowed by the
        underlying future machinery, as with
        :meth:`concurrent.futures.Future.add_done_callback`.
        """
        self._future.add_done_callback(lambda _future: fn(self))


#: Sentinel the capture stage sends when it failed mid-checkpoint, so the
#: persist stage aborts the ticket instead of committing a truncated payload.
_CAPTURE_FAILED = object()

#: Poll period for waits that must notice a dead pipeline peer: the
#: capture stage's buffer acquisition (its consumer may have died and
#: stopped releasing buffers) and the slot wait in ``checkpoint_async``
#: (every slot may be held by a dangling post-crash ticket).  Small enough
#: that failure detection latency is negligible next to a persist.
_STAGE_POLL_SECONDS: float = 0.05


class _PersistStageDied(EngineError):
    """Internal control-flow signal: the capture stage stopped because its
    persist consumer failed; the consumer's error is what reaches the
    handle."""


class OrchestratorStats:
    """Stall accounting surfaced to benchmarks.

    Since the observability layer landed these are thin read-through
    properties over the shared :class:`~repro.obs.metrics
    .MetricsRegistry` — the single source of truth — kept so existing
    benchmark/test code reading ``orchestrator.stats.update_stall_seconds``
    keeps working unchanged.
    """

    def __init__(self, metrics: MetricsRegistry) -> None:
        self._metrics = metrics

    @property
    def checkpoints_requested(self) -> int:
        return int(self._metrics.value(M.CHECKPOINTS_REQUESTED))

    @property
    def update_stall_seconds(self) -> float:
        """Cumulative T→U consistency stall (Figure 6)."""
        return self._metrics.value(M.UPDATE_STALL_SECONDS)

    @property
    def slot_wait_seconds(self) -> float:
        """Cumulative free-slot stall (the ``Tw > N·f·t`` condition)."""
        return self._metrics.value(M.SLOT_WAIT_SECONDS)

    @property
    def buffer_wait_seconds(self) -> float:
        """Cumulative DRAM staging-pool stall in the capture stage."""
        return self._metrics.value(M.BUFFER_WAIT_SECONDS)

    def add_update_stall(self, seconds: float) -> None:
        self._metrics.inc(M.UPDATE_STALL_SECONDS, seconds)


class PCcheckOrchestrator:
    """Drives concurrent checkpoint pipelines over one engine."""

    def __init__(
        self,
        engine: CheckpointEngine,
        pool: DRAMBufferPool,
        config: Optional[PCcheckConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
    ) -> None:
        self._engine = engine
        self._pool = pool
        # Default to the engine's registry/tracer so the whole stack
        # reports into one place; overrides exist for tests that want an
        # isolated view.
        self._metrics = metrics if metrics is not None else engine.metrics
        self._tracer = tracer if tracer is not None else engine.tracer
        self._config = config or PCcheckConfig(
            num_concurrent=engine.max_concurrent,
            writer_threads=engine.writer_threads,
            chunk_size=pool.chunk_size,
            num_chunks=pool.total_chunks,
        )
        # Two threads per in-flight checkpoint: capture + persist stages.
        workers = 2 * engine.max_concurrent
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="pccheck-orch"
        )
        self._pending: List[CheckpointHandle] = []
        self._pending_lock = threading.Lock()
        self._closed = False
        #: First unrecoverable pipeline failure (a crashed device).  Once
        #: set, new checkpoints are refused instead of blocking forever on
        #: slots held by dangling post-crash tickets.
        self._fatal: Optional[BaseException] = None
        self.stats = OrchestratorStats(self._metrics)

    # ------------------------------------------------------------------
    # trainer-facing API

    @property
    def engine(self) -> CheckpointEngine:
        """The checkpoint engine this orchestrator drives."""
        return self._engine

    @property
    def metrics(self) -> MetricsRegistry:
        """The registry the whole pipeline reports into."""
        return self._metrics

    @property
    def tracer(self):
        """The lifecycle tracer (``NULL_TRACER`` when tracing is off)."""
        return self._tracer

    @property
    def config(self) -> PCcheckConfig:
        """Active configuration."""
        return self._config

    @property
    def fatal_error(self) -> Optional[BaseException]:
        """The unrecoverable pipeline failure, if one happened.

        Non-``None`` means a persist stage died on a crashed device; the
        orchestrator refuses new checkpoints and the engine pool must not
        hand this stack to another tenant.
        """
        return self._fatal

    def checkpoint_async(self, source: SnapshotSource, step: int) -> CheckpointHandle:
        """Start a concurrent checkpoint of ``source``.

        Returns immediately after scheduling; blocks only if the engine
        has no free slot (all N concurrent checkpoints busy), which is the
        paper's stall condition ``Tw > N · f · t``.
        """
        if self._closed:
            raise EngineClosedError("orchestrator is closed")
        self._check_fatal()
        handle = CheckpointHandle(step=step)
        handle._started = time.monotonic()  # noqa: SLF001
        self._metrics.inc(M.CHECKPOINTS_REQUESTED)
        root = self._tracer.begin("checkpoint", step=step)
        handle.span = root
        # Reserve counter + slot in the caller's thread: engine.begin()
        # blocking is precisely the "wait for a previous checkpoint"
        # stall that concurrency is meant to bound.  Poll rather than
        # block indefinitely: after a device crash every slot may be held
        # by a dangling ticket that will never release it.  The lazy
        # slot_wait span records the stall only when one actually happens.
        slot_span = None
        try:
            while True:
                try:
                    ticket = self._engine.begin(
                        step=step, timeout=_STAGE_POLL_SECONDS
                    )
                    break
                except SlotWaitTimeout:
                    if slot_span is None:
                        slot_span = self._tracer.begin(
                            "slot_wait", parent=root
                        )
                    self._check_fatal()
        except BaseException:
            if slot_span is not None:
                self._tracer.end(slot_span)
            self._tracer.end(root, status=STATUS_ABORTED)
            raise
        if slot_span is not None:
            self._tracer.end(slot_span)
        ticket.trace_parent = root
        handle.counter = ticket.counter
        root.set(counter=ticket.counter, slot=ticket.slot)
        hand_off: "queue.Queue[Optional[PinnedBuffer]]" = queue.Queue()
        persist_dead = threading.Event()
        persist_future = self._executor.submit(
            self._persist_stage, ticket, hand_off, handle, persist_dead
        )
        self._executor.submit(
            self._capture_stage, source, hand_off, handle, persist_future,
            persist_dead,
        )
        with self._pending_lock:
            self._pending = [h for h in self._pending if not h.done()]
            self._pending.append(handle)
        return handle

    def checkpoint_sync(self, source: SnapshotSource, step: int) -> CheckpointResult:
        """Checkpoint and wait for the commit (used by recovery tests)."""
        handle = self.checkpoint_async(source, step)
        return handle.wait()

    def wait_for_snapshots(self) -> float:
        """Block until every in-flight capture finished; returns the time
        spent waiting.  The trainer calls this before each weight update
        (the T→U consistency stall of Figure 6)."""
        start = time.monotonic()
        with self._pending_lock:
            pending = list(self._pending)
        for handle in pending:
            handle.snapshot_done.wait()
        waited = time.monotonic() - start
        self.stats.add_update_stall(waited)
        return waited

    def drain(
        self,
        timeout: Optional[float] = None,
        return_exceptions: bool = False,
    ) -> List[CheckpointResult]:
        """Wait for every outstanding checkpoint to finish.

        Every pending handle is awaited even when some failed — a crashed
        pipeline must not leave later handles un-joined.  With
        ``return_exceptions=False`` (default) the first failure re-raises
        *after* all handles settled; with ``return_exceptions=True`` the
        failures appear in the result list instead.
        """
        with self._pending_lock:
            pending = list(self._pending)
        results: List[CheckpointResult] = []
        first_error: Optional[BaseException] = None
        for handle in pending:
            try:
                results.append(handle.wait(timeout))
            except BaseException as exc:  # noqa: BLE001 - collected below
                if first_error is None:
                    first_error = exc
                if return_exceptions:
                    results.append(exc)
        if first_error is not None and not return_exceptions:
            raise first_error
        return results

    def close(self) -> None:
        """Drain and shut down the pipelines.

        Always terminates, even when handles failed: failures were
        deliverable through :meth:`CheckpointHandle.wait`, so close
        swallows them rather than leaving the executor running.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self.drain(return_exceptions=True)
        finally:
            self._executor.shutdown(wait=True)
            self._engine.close()

    def _check_fatal(self) -> None:
        fatal = self._fatal
        if fatal is not None:
            raise EngineClosedError(
                "orchestrator pipelines died on a crashed device; "
                "recover the device and build a fresh orchestrator"
            ) from fatal

    def __enter__(self) -> "PCcheckOrchestrator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # pipeline stages

    def _capture_stage(
        self,
        source: SnapshotSource,
        hand_off: "queue.Queue[Optional[PinnedBuffer]]",
        handle: CheckpointHandle,
        persist_future: "Future[CheckpointResult]",
        persist_dead: threading.Event,
    ) -> None:
        tracer = self._tracer
        stage_span = tracer.begin("capture", parent=handle.span,
                                  step=handle.step)
        stage_start = time.monotonic()
        try:
            total = source.snapshot_size()
            plan = plan_chunks(total, self._pool.chunk_size)
            stage_span.set(total_bytes=total, chunks=plan.num_chunks)
            for index, (offset, length) in enumerate(plan):
                # Poll the pool instead of blocking forever: if the
                # persist stage died, nobody is releasing buffers and an
                # unconditional acquire() would deadlock this thread (and
                # with it wait_for_snapshots and executor shutdown).
                buffer: Optional[PinnedBuffer] = None
                wait_start = time.monotonic()
                wait_span = None
                while buffer is None:
                    if persist_dead.is_set():
                        if wait_span is not None:
                            tracer.end(wait_span)
                        raise _PersistStageDied(
                            "persist stage failed; capture abandoned"
                        )
                    buffer = self._pool.acquire(timeout=_STAGE_POLL_SECONDS)
                    if buffer is None and wait_span is None:
                        # Only a real stall (an acquire came back empty)
                        # earns a span; instant acquisitions are noise.
                        wait_span = tracer.begin(
                            "buffer_wait", parent=stage_span, chunk=index
                        )
                self._metrics.inc(
                    M.BUFFER_WAIT_SECONDS, time.monotonic() - wait_start
                )
                if wait_span is not None:
                    tracer.end(wait_span)
                try:
                    with tracer.span("capture_chunk", parent=stage_span,
                                     chunk=index, offset=offset,
                                     length=length):
                        source.capture_chunk(offset, length, buffer)
                except BaseException:
                    self._pool.release(buffer)
                    raise
                # The staging copy into the pinned buffer is the ONE
                # intentional copy of the checkpoint path; everything
                # downstream moves memoryview slices.  Counting it here
                # lets the persist benchmark assert copies-per-checkpoint
                # stays at 1x the payload.
                self._metrics.inc(M.BYTES_COPIED, length)
                hand_off.put(buffer)
            handle.snapshot_done.set()
            hand_off.put(None)  # end-of-chunks sentinel
            self._metrics.observe(
                M.STAGE_SECONDS, time.monotonic() - stage_start,
                stage="capture",
            )
            tracer.end(stage_span)
        except BaseException as exc:  # noqa: BLE001 - fail the handle
            tracer.end(stage_span, error=type(exc).__name__)
            handle.snapshot_done.set()
            hand_off.put(_CAPTURE_FAILED)
            # Wait for the persist stage to abort the ticket (or finish
            # its own failure path), then surface the capture error on
            # the handle — unless the persist stage's error got there
            # first, which is the root cause when we were poisoned.
            persist_future.exception()
            if not handle._future.done():  # noqa: SLF001
                handle._future.set_exception(exc)  # noqa: SLF001

    def _persist_stage(
        self,
        ticket,
        hand_off: "queue.Queue[Optional[PinnedBuffer]]",
        handle: CheckpointHandle,
        persist_dead: threading.Event,
    ) -> Optional[CheckpointResult]:
        # True once capture's terminal sentinel was consumed: after that
        # the hand-off queue stays empty forever, so the failure path must
        # not block draining it.
        sentinel_seen = False
        tracer = self._tracer
        stage_span = tracer.begin("persist", parent=handle.span,
                                  step=handle.step, slot=ticket.slot)
        stage_start = time.monotonic()
        # Deferred-reap pipeline: chunk k's submission (and its staging
        # buffer) stays in flight while chunk k+1 is dequeued, submitted
        # and CRC'd, so the CRC of chunk k+1 overlaps the device writes
        # of chunk k on the double pinned buffers.  `held` is the queue
        # of (submission, buffer) pairs whose reap is deferred; entries
        # are popped BEFORE settling so no failure path can see (and
        # release) the same buffer twice.
        held = []
        try:
            index = 0
            while True:
                if held:
                    # Bounded wait while a deferred reap holds a staging
                    # buffer: the capture stage may be starving on that
                    # very buffer (a pool with fewer buffers than the
                    # pipeline depth), so a stalled hand-off settles the
                    # backlog — refilling the pool — before blocking for
                    # real.  Chunks arriving back-to-back never hit the
                    # timeout, so the CRC/persist overlap is preserved on
                    # the hot path.
                    try:
                        buffer = hand_off.get(timeout=_STAGE_POLL_SECONDS)
                    except queue.Empty:
                        while held:
                            self._settle_inflight(ticket, held.pop(0))
                        continue
                else:
                    buffer = hand_off.get()
                if buffer is None:
                    sentinel_seen = True
                    break
                if buffer is _CAPTURE_FAILED:
                    sentinel_seen = True
                    while held:
                        self._settle_inflight(ticket, held.pop(0),
                                              swallow=True)
                    ticket.abort()
                    tracer.end(stage_span, error="capture_failed")
                    self._finish_root(handle, STATUS_ABORTED)
                    return None
                try:
                    staged = buffer.view()
                    with tracer.span("persist_chunk", parent=stage_span,
                                     chunk=index, length=len(staged)):
                        submission = ticket.submit_chunk(staged)
                except BaseException:
                    self._pool.release(buffer)
                    raise
                held.append((submission, buffer))
                while len(held) > 1:
                    self._settle_inflight(ticket, held.pop(0))
                index += 1
            while held:
                self._settle_inflight(ticket, held.pop(0))
            self._metrics.observe(
                M.STAGE_SECONDS, time.monotonic() - stage_start,
                stage="persist",
            )
            tracer.end(stage_span, chunks=index)
            result = ticket.commit()
            if not handle._future.done():  # noqa: SLF001
                handle._future.set_result(result)  # noqa: SLF001
            self._finish_root(
                handle,
                STATUS_COMMITTED if result.committed else STATUS_SUPERSEDED,
            )
            return result
        except BaseException as exc:  # noqa: BLE001 - fail the handle
            # Poison the capture stage first so it stops acquiring
            # buffers, then drain the hand-off queue: captured-but-not-
            # persisted buffers must return to the pool or its permanent
            # shrinkage deadlocks every later capture.  The deferred
            # chunk (if any) is settled the same way — its buffer must
            # not leak, and no pool worker may keep referencing it.
            persist_dead.set()
            while held:
                self._settle_inflight(ticket, held.pop(0), swallow=True)
            tracer.end(stage_span, error=type(exc).__name__)
            if isinstance(exc, CrashedDeviceError):
                # Power loss: the ticket dangles (recovery reclaims the
                # slot after restart) and the engine is doomed — refuse
                # new checkpoints instead of letting them block on slots
                # no dangling ticket will ever release.
                self._fatal = exc
                self._metrics.inc(M.DANGLING)
                self._finish_root(handle, STATUS_DANGLING)
            else:
                # Local failure (e.g. the payload outgrew the slot): the
                # device is fine, so recycle the slot.  Data already in
                # the slot can never validate without a header.
                ticket.abort()
                self._finish_root(handle, STATUS_ABORTED)
            if not sentinel_seen:
                self._drain_hand_off(hand_off)
            handle.snapshot_done.set()
            if not handle._future.done():  # noqa: SLF001
                handle._future.set_exception(exc)  # noqa: SLF001
            raise

    def _settle_inflight(self, ticket, inflight, swallow: bool = False) -> None:
        """Reap a deferred chunk submission and release its buffer.

        ``swallow=True`` is the failure path: the checkpoint is already
        dead, so reap errors are moot — what matters is that no pool
        worker still references the staging buffer when it returns to
        the DRAM pool.  Callers must drop their own reference *before*
        calling, so a reap failure cannot lead to a double release.
        """
        if inflight is None:
            return
        submission, buffer = inflight
        try:
            ticket.reap(submission)
        except Exception:
            if not swallow:
                raise
        finally:
            self._pool.release(buffer)

    def _finish_root(self, handle: CheckpointHandle, status: str) -> None:
        """Close the handle's root ``checkpoint`` span with its outcome and
        record the request→ack latency.  Idempotent: ``Tracer.end`` keeps
        the first end time, and the racing capture/persist failure paths
        both funnel through here."""
        if handle._finished:  # noqa: SLF001
            return
        handle._finished = True  # noqa: SLF001
        if handle.span is not None:
            self._tracer.end(handle.span, status=status)
        if handle._started:  # noqa: SLF001
            self._metrics.observe(
                M.CHECKPOINT_SECONDS,
                time.monotonic() - handle._started,  # noqa: SLF001
            )

    def _drain_hand_off(
        self, hand_off: "queue.Queue[Optional[PinnedBuffer]]"
    ) -> None:
        """Release every buffer stranded in the hand-off queue.

        Runs on the persist stage's failure path.  Terminates because the
        capture stage always posts a terminal sentinel: ``None`` after its
        last chunk, or ``_CAPTURE_FAILED`` when it fails or observes the
        poison event.
        """
        while True:
            buffer = hand_off.get()
            if buffer is None or buffer is _CAPTURE_FAILED:
                return
            self._pool.release(buffer)
