"""Sharded checkpoints for data-parallel replicas (§3.1).

"When a combination of data and pipeline parallelism is used, the
checkpoint state of each pipeline stage is partitioned among the data
parallel replicas of this stage, reducing the overall checkpointing
overhead."  Each replica holds the *same* state, so any replica can
persist any shard — splitting the state K ways makes every replica write
only m/K bytes.

Shards carry a small self-describing header (index, count, total length,
and a digest of the full state) so reassembly can verify it is stitching
shards of the *same* state version together.
"""

from __future__ import annotations

import struct
import zlib
from typing import List, Sequence

from repro.errors import ConfigError, CorruptCheckpointError

_SHARD_MAGIC = b"PCSHARD1"
# magic(8s) index(I) count(I) total_len(Q) offset(Q) state_crc(I)
_SHARD_HEADER = struct.Struct("<8sIIQQI")


def shard_payload(state: bytes, num_shards: int) -> List[bytes]:
    """Split ``state`` into ``num_shards`` self-describing shards."""
    if num_shards < 1:
        raise ConfigError(f"need at least one shard, got {num_shards}")
    crc = zlib.crc32(state)
    base, extra = divmod(len(state), num_shards)
    shards: List[bytes] = []
    offset = 0
    for index in range(num_shards):
        size = base + (1 if index < extra else 0)
        piece = state[offset : offset + size]
        header = _SHARD_HEADER.pack(
            _SHARD_MAGIC, index, num_shards, len(state), offset, crc
        )
        shards.append(header + piece)
        offset += size
    return shards


def _parse(shard: bytes):
    if len(shard) < _SHARD_HEADER.size:
        raise CorruptCheckpointError("truncated shard header")
    magic, index, count, total_len, offset, crc = _SHARD_HEADER.unpack(
        shard[: _SHARD_HEADER.size]
    )
    if magic != _SHARD_MAGIC:
        raise CorruptCheckpointError("not a PCcheck shard")
    return index, count, total_len, offset, crc, shard[_SHARD_HEADER.size :]


def reassemble(shards: Sequence[bytes]) -> bytes:
    """Stitch shards back into the full state, verifying consistency.

    Shards may arrive in any order; they must all describe the same
    state (same count, total length, and state digest), cover it exactly,
    and the reassembled bytes must match the digest.
    """
    if not shards:
        raise CorruptCheckpointError("no shards to reassemble")
    parsed = [_parse(shard) for shard in shards]
    _, count, total_len, _, crc, _ = parsed[0]
    if len(parsed) != count:
        raise CorruptCheckpointError(
            f"expected {count} shards, got {len(parsed)}"
        )
    for index, shard_count, shard_total, _, shard_crc, _ in parsed:
        if shard_count != count or shard_total != total_len or shard_crc != crc:
            raise CorruptCheckpointError("shards from different state versions")
    seen = {index for index, *_ in parsed}
    if seen != set(range(count)):
        raise CorruptCheckpointError(
            f"shard indices {sorted(seen)} do not cover 0..{count - 1}"
        )
    out = bytearray(total_len)
    covered = 0
    for index, _, _, offset, _, piece in parsed:
        if offset + len(piece) > total_len:
            raise CorruptCheckpointError("shard exceeds state bounds")
        out[offset : offset + len(piece)] = piece
        covered += len(piece)
    if covered != total_len:
        raise CorruptCheckpointError(
            f"shards cover {covered} of {total_len} bytes"
        )
    state = bytes(out)
    if zlib.crc32(state) != crc:
        raise CorruptCheckpointError("reassembled state fails its digest")
    return state


def shard_overhead_bytes(num_shards: int) -> int:
    """Header bytes the sharding adds in total."""
    return num_shards * _SHARD_HEADER.size
