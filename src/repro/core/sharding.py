"""Sharded checkpoints for data-parallel replicas (§3.1).

"When a combination of data and pipeline parallelism is used, the
checkpoint state of each pipeline stage is partitioned among the data
parallel replicas of this stage, reducing the overall checkpointing
overhead."  Each replica holds the *same* state, so any replica can
persist any shard — splitting the state K ways makes every replica write
only m/K bytes.

Shards carry a small self-describing header (index, count, total length,
and a digest of the full state) so reassembly can verify it is stitching
shards of the *same* state version together.

On top of the per-shard headers, a checkpoint can carry a **global
shard index** — :class:`ShardManifest`, a list of
``(tensor, byte-range, writer-rank)`` entries covering the full state —
so that recovery on a *different* world size can re-partition an
N-writer checkpoint onto M readers (see :mod:`repro.core.reshard`)
without consulting the world that wrote it.  The manifest is
self-describing and CRC-protected; it can be rebuilt from the shard
headers themselves (:func:`manifest_from_shards`) when only the shards
survived.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ConfigError, CorruptCheckpointError

_SHARD_MAGIC = b"PCSHARD1"
# magic(8s) index(I) count(I) total_len(Q) offset(Q) state_crc(I)
_SHARD_HEADER = struct.Struct("<8sIIQQI")

_MANIFEST_MAGIC = b"PCMANIF1"
# magic(8s) entry_count(I) total_len(Q) state_crc(I)
_MANIFEST_HEADER = struct.Struct("<8sIQI")
# writer_rank(I) start(Q) length(Q) tensor_name_len(H)
_MANIFEST_ENTRY = struct.Struct("<IQQH")
_MANIFEST_CRC = struct.Struct("<I")


def shard_payload(state: bytes, num_shards: int) -> List[bytes]:
    """Split ``state`` into ``num_shards`` self-describing shards."""
    if num_shards < 1:
        raise ConfigError(f"need at least one shard, got {num_shards}")
    crc = zlib.crc32(state)
    base, extra = divmod(len(state), num_shards)
    shards: List[bytes] = []
    offset = 0
    for index in range(num_shards):
        size = base + (1 if index < extra else 0)
        piece = state[offset : offset + size]
        header = _SHARD_HEADER.pack(
            _SHARD_MAGIC, index, num_shards, len(state), offset, crc
        )
        shards.append(header + piece)
        offset += size
    return shards


@dataclass(frozen=True)
class ShardInfo:
    """Decoded per-shard header: where the piece lives in the state."""

    index: int
    count: int
    total_len: int
    offset: int
    state_crc: int


def decode_shard(shard) -> Tuple[ShardInfo, memoryview]:
    """Split a self-describing shard into its header and payload view.

    Accepts any bytes-like object; the returned payload is a zero-copy
    ``memoryview`` into ``shard``.
    """
    view = memoryview(shard).cast("B")
    if len(view) < _SHARD_HEADER.size:
        raise CorruptCheckpointError("truncated shard header")
    magic, index, count, total_len, offset, crc = _SHARD_HEADER.unpack(
        view[: _SHARD_HEADER.size]
    )
    if magic != _SHARD_MAGIC:
        raise CorruptCheckpointError("not a PCcheck shard")
    return ShardInfo(index, count, total_len, offset, crc), view[_SHARD_HEADER.size:]


def is_shard(payload) -> bool:
    """True when ``payload`` starts with a shard header's magic."""
    view = memoryview(payload).cast("B")
    return bytes(view[: len(_SHARD_MAGIC)]) == _SHARD_MAGIC


def _parse(shard: bytes):
    info, piece = decode_shard(shard)
    return (info.index, info.count, info.total_len, info.offset,
            info.state_crc, bytes(piece))


def reassemble(shards: Sequence[bytes]) -> bytes:
    """Stitch shards back into the full state, verifying consistency.

    Shards may arrive in any order; they must all describe the same
    state (same count, total length, and state digest), cover it exactly,
    and the reassembled bytes must match the digest.
    """
    if not shards:
        raise CorruptCheckpointError("no shards to reassemble")
    parsed = [_parse(shard) for shard in shards]
    _, count, total_len, _, crc, _ = parsed[0]
    if len(parsed) != count:
        raise CorruptCheckpointError(
            f"expected {count} shards, got {len(parsed)}"
        )
    for index, shard_count, shard_total, _, shard_crc, _ in parsed:
        if shard_count != count or shard_total != total_len or shard_crc != crc:
            raise CorruptCheckpointError("shards from different state versions")
    seen = {index for index, *_ in parsed}
    if seen != set(range(count)):
        raise CorruptCheckpointError(
            f"shard indices {sorted(seen)} do not cover 0..{count - 1}"
        )
    out = bytearray(total_len)
    covered = 0
    for index, _, _, offset, _, piece in parsed:
        if offset + len(piece) > total_len:
            raise CorruptCheckpointError("shard exceeds state bounds")
        out[offset : offset + len(piece)] = piece
        covered += len(piece)
    if covered != total_len:
        raise CorruptCheckpointError(
            f"shards cover {covered} of {total_len} bytes"
        )
    state = bytes(out)
    if zlib.crc32(state) != crc:
        raise CorruptCheckpointError("reassembled state fails its digest")
    return state


def encode_shard(
    index: int, count: int, total_len: int, offset: int, state_crc: int,
    piece,
) -> bytes:
    """Frame one piece of the state as a self-describing shard.

    The inverse of :func:`decode_shard`; ``piece`` may be any bytes-like
    object (a :class:`memoryview` stays zero-copy until the final join).
    """
    header = _SHARD_HEADER.pack(
        _SHARD_MAGIC, index, count, total_len, offset, state_crc
    )
    return header + bytes(piece)


def shard_overhead_bytes(num_shards: int) -> int:
    """Header bytes the sharding adds in total."""
    return num_shards * _SHARD_HEADER.size


# ----------------------------------------------------------------------
# the global shard index


@dataclass(frozen=True)
class ShardEntry:
    """One manifest row: a byte range of the state and who wrote it."""

    writer_rank: int
    start: int
    length: int
    #: Logical tensor the range belongs to ("" for a flat state blob).
    tensor: str = ""

    @property
    def stop(self) -> int:
        """Exclusive end of the range."""
        return self.start + self.length


@dataclass(frozen=True)
class ShardManifest:
    """Global index of a sharded checkpoint: who holds which bytes.

    Self-describing: ``total_len`` and ``state_crc`` identify the state
    version (matching the per-shard headers), and ``entries`` cover
    ``[0, total_len)`` exactly, ordered by ``start``.  The manifest is
    what lets recovery re-partition an N-writer checkpoint onto M
    readers without knowing anything about the world that wrote it.
    """

    total_len: int
    state_crc: int
    entries: Tuple[ShardEntry, ...]

    @property
    def num_writers(self) -> int:
        """Distinct writer ranks named by the manifest."""
        return len({entry.writer_rank for entry in self.entries})

    def validate(self) -> None:
        """Raise :class:`~repro.errors.CorruptCheckpointError` unless the
        entries cover the state exactly, in order, without overlap."""
        if self.total_len < 0:
            raise CorruptCheckpointError(
                f"manifest total length {self.total_len} is negative"
            )
        cursor = 0
        for entry in self.entries:
            if entry.length < 0 or entry.writer_rank < 0:
                raise CorruptCheckpointError(
                    f"manifest entry {entry} has a negative field"
                )
            if entry.start < cursor:
                raise CorruptCheckpointError(
                    f"manifest ranges overlap at byte {entry.start} "
                    f"(previous entry runs to {cursor})"
                )
            if entry.start > cursor:
                raise CorruptCheckpointError(
                    f"manifest leaves bytes {cursor}..{entry.start} uncovered"
                )
            cursor = entry.stop
        if cursor != self.total_len:
            raise CorruptCheckpointError(
                f"manifest covers {cursor} of {self.total_len} bytes"
            )


def build_manifest(
    state_len: int, state_crc: int, num_shards: int
) -> ShardManifest:
    """The manifest matching :func:`shard_payload`'s even split."""
    if num_shards < 1:
        raise ConfigError(f"need at least one shard, got {num_shards}")
    base, extra = divmod(state_len, num_shards)
    entries: List[ShardEntry] = []
    offset = 0
    for rank in range(num_shards):
        size = base + (1 if rank < extra else 0)
        entries.append(ShardEntry(writer_rank=rank, start=offset, length=size))
        offset += size
    return ShardManifest(
        total_len=state_len, state_crc=state_crc, entries=tuple(entries)
    )


def manifest_for_state(state: bytes, num_shards: int) -> ShardManifest:
    """Build the manifest :func:`shard_payload` implies for ``state``."""
    return build_manifest(len(state), zlib.crc32(state), num_shards)


def manifest_from_shards(shards: Sequence) -> ShardManifest:
    """Rebuild the global index from self-describing shards.

    The shards must all describe the same state version and cover it
    exactly — the same checks :func:`reassemble` performs — but no
    payload bytes are copied or digested here.
    """
    if not shards:
        raise CorruptCheckpointError("no shards to index")
    decoded = [decode_shard(shard) for shard in shards]
    first = decoded[0][0]
    if len(decoded) != first.count:
        raise CorruptCheckpointError(
            f"expected {first.count} shards, got {len(decoded)}"
        )
    entries: List[ShardEntry] = []
    for info, piece in decoded:
        if (info.count != first.count or info.total_len != first.total_len
                or info.state_crc != first.state_crc):
            raise CorruptCheckpointError("shards from different state versions")
        entries.append(
            ShardEntry(
                writer_rank=info.index, start=info.offset, length=len(piece)
            )
        )
    ranks = {entry.writer_rank for entry in entries}
    if ranks != set(range(first.count)):
        raise CorruptCheckpointError(
            f"shard indices {sorted(ranks)} do not cover 0..{first.count - 1}"
        )
    entries.sort(key=lambda entry: entry.start)
    manifest = ShardManifest(
        total_len=first.total_len,
        state_crc=first.state_crc,
        entries=tuple(entries),
    )
    manifest.validate()
    return manifest


def encode_manifest(manifest: ShardManifest) -> bytes:
    """Serialize a manifest to a CRC-protected, self-describing blob."""
    parts = [
        _MANIFEST_HEADER.pack(
            _MANIFEST_MAGIC, len(manifest.entries), manifest.total_len,
            manifest.state_crc,
        )
    ]
    for entry in manifest.entries:
        name = entry.tensor.encode("utf-8")
        parts.append(
            _MANIFEST_ENTRY.pack(
                entry.writer_rank, entry.start, entry.length, len(name)
            )
        )
        parts.append(name)
    body = b"".join(parts)
    return body + _MANIFEST_CRC.pack(zlib.crc32(body))


def decode_manifest(raw: bytes) -> ShardManifest:
    """Parse and validate an encoded manifest.

    Raises :class:`~repro.errors.CorruptCheckpointError` on truncation,
    a digest mismatch, overlapping or gapped ranges — a fuzzed manifest
    never silently yields a wrong re-partitioning plan.
    """
    if len(raw) < _MANIFEST_HEADER.size + _MANIFEST_CRC.size:
        raise CorruptCheckpointError("truncated manifest header")
    magic, count, total_len, state_crc = _MANIFEST_HEADER.unpack(
        raw[: _MANIFEST_HEADER.size]
    )
    if magic != _MANIFEST_MAGIC:
        raise CorruptCheckpointError("not a PCcheck shard manifest")
    body, (crc,) = raw[:-_MANIFEST_CRC.size], _MANIFEST_CRC.unpack(
        raw[-_MANIFEST_CRC.size:]
    )
    if zlib.crc32(body) != crc:
        raise CorruptCheckpointError("manifest fails its digest")
    entries: List[ShardEntry] = []
    cursor = _MANIFEST_HEADER.size
    for _ in range(count):
        if cursor + _MANIFEST_ENTRY.size > len(body):
            raise CorruptCheckpointError("truncated manifest entry")
        writer_rank, start, length, name_len = _MANIFEST_ENTRY.unpack(
            body[cursor : cursor + _MANIFEST_ENTRY.size]
        )
        cursor += _MANIFEST_ENTRY.size
        if cursor + name_len > len(body):
            raise CorruptCheckpointError("truncated manifest tensor name")
        tensor = body[cursor : cursor + name_len].decode("utf-8")
        cursor += name_len
        entries.append(
            ShardEntry(
                writer_rank=writer_rank, start=start, length=length,
                tensor=tensor,
            )
        )
    if cursor != len(body):
        raise CorruptCheckpointError(
            f"{len(body) - cursor} trailing bytes after the last "
            "manifest entry"
        )
    manifest = ShardManifest(
        total_len=total_len, state_crc=state_crc, entries=tuple(entries)
    )
    manifest.validate()
    return manifest
