"""Parallel persist: a persistent pool of ``p`` writer threads.

PCcheck shortens the persist phase by splitting each checkpoint (or chunk)
across multiple writer threads (§3.3, §5.4.2: 3 threads give up to 1.36×
over 1).  The fence discipline differs per medium, and the paper is
explicit about it (§4.1):

* **PMEM** — "every thread must also call a ``fence()`` within the
  ``persist`` function.  The fence is internal to each CPU, meaning that
  the main thread ... cannot call a fence to cover all data": each writer
  persists its own range (``fence_mode="per-thread"``).
* **SSD** — "the main thread can call a single ``msync()`` with the
  checkpoint address and persist the data, improving performance"
  (``fence_mode="single"``).

:func:`default_fence_mode` picks the right discipline for a device.

Two properties keep this path at device speed:

* **Zero-copy shares.**  Payloads are normalized to a ``memoryview`` once
  (:func:`repro.storage.device.as_view`) and each writer receives an O(1)
  slice of that view — the old per-share ``payload[lo:hi]`` ``bytes``
  copies are gone.
* **A pinned worker pool.**  The ``p`` writer threads are spawned once (on
  the first multi-share persist) and live for the writer's lifetime,
  taking work over a condition variable instead of paying a
  ``threading.Thread`` spawn/join per persist call.  Concurrent
  ``persist`` calls (one per in-flight checkpoint pipeline) interleave
  their shares on the same pool; each call tracks its own completion.

Writer threads propagate exceptions (including injected crashes) to the
calling ``persist``, so a power-loss mid-persist kills the checkpoint
exactly as it would in the real system — a worker survives the exception
and stays available for later work (the device, not the pool, is what
died).

:meth:`ParallelWriter.persist_many` persists a batch of scattered pieces
with ONE fence per batch in ``single`` mode (the orchestrator's
consecutive-chunk layout makes the covering range tight), instead of the
fence-per-piece amplification the naive loop pays.

Submission is split io_uring-style into :meth:`ParallelWriter.submit`
(queue ALL shares of a batch to the pool under one lock acquisition,
return immediately) and :meth:`ParallelWriter.reap` (one wait for the
whole batch, then one covering fence).  ``persist``/``persist_many`` are
submit+reap back to back; the engine uses the split form to overlap CRC
compute of chunk *k* with the device writes of chunk *k−1*.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, List, Literal, Optional, Sequence, Tuple

from repro.errors import EngineError
from repro.storage.device import Buffer, PersistentDevice, as_view
from repro.storage.pmem import SimulatedPMEM

FenceMode = Literal["per-thread", "single"]


def default_fence_mode(device: PersistentDevice) -> FenceMode:
    """Fence discipline the paper prescribes for this device type."""
    if isinstance(device, SimulatedPMEM):
        return "per-thread"
    return "single"


def split_range(
    length: int, parts: int, align: int = 1
) -> List[Tuple[int, int]]:
    """Split ``[0, length)`` into up to ``parts`` contiguous shares.

    Shares differ in size by at most one byte (one ``align`` unit when an
    alignment is given); zero-length shares are dropped, so fewer than
    ``parts`` tuples come back for tiny payloads.

    ``align > 1`` rounds every interior share boundary down to a multiple
    of ``align`` (the final share still ends at ``length``), so devices
    with sector or stripe granularity — unbuffered files, striped
    composites — never see one sector split between two writer threads.
    """
    if parts <= 0:
        raise EngineError(f"need at least one writer, got {parts}")
    if length < 0:
        raise EngineError(f"negative length {length}")
    if align <= 0:
        raise EngineError(f"share alignment must be positive, got {align}")
    if align > 1:
        # Split whole align-units; the tail unit may be short.
        units = -(-length // align)
        unit_shares = split_range(units, parts)
        return [
            (lo * align, min(hi * align, length)) for lo, hi in unit_shares
        ]
    base, extra = divmod(length, parts)
    shares: List[Tuple[int, int]] = []
    start = 0
    for index in range(parts):
        size = base + (1 if index < extra else 0)
        if size > 0:
            shares.append((start, start + size))
        start += size
    return shares


class _PersistBatch:
    """Completion tracker for one ``persist``/``persist_many`` call.

    Shares from many concurrent batches interleave on the pool; each
    batch counts down its own outstanding shares and collects the errors
    its shares raised, so failure propagation stays per-call exactly as
    it was with per-call thread spawning.
    """

    __slots__ = ("_lock", "_pending", "done", "errors", "done_at")

    def __init__(self, pending: int) -> None:
        self._lock = threading.Lock()
        self._pending = pending
        self.done = threading.Event()
        self.errors: List[BaseException] = []
        #: ``time.monotonic()`` at which the last share settled — lets the
        #: engine measure how much CRC compute genuinely overlapped the
        #: device writes (M.PIPELINE_OVERLAP_SECONDS).
        self.done_at: Optional[float] = None

    def share_finished(self, error: Optional[BaseException]) -> None:
        with self._lock:
            if error is not None:
                self.errors.append(error)
            self._pending -= 1
            if self._pending == 0:
                self.done_at = time.monotonic()
                self.done.set()


class _ShareTask:
    """One writer share: a zero-copy slice of a payload view."""

    __slots__ = ("offset", "view", "lo", "hi", "fence", "batch")

    def __init__(
        self,
        offset: int,
        view: memoryview,
        lo: int,
        hi: int,
        fence: bool,
        batch: _PersistBatch,
    ) -> None:
        self.offset = offset
        self.view = view
        self.lo = lo
        self.hi = hi
        self.fence = fence
        self.batch = batch


class PersistSubmission:
    """Ticket for one in-flight :meth:`ParallelWriter.submit` batch.

    Durability is *pending* until :meth:`ParallelWriter.reap` returns:
    the pool may still be writing, no covering fence has been issued, and
    the payload views must stay stable.  The caller is free to do CPU
    work (CRC, staging the next chunk) in between — that window is
    exactly the pipeline overlap the engine measures.
    """

    __slots__ = ("batch", "shares", "span", "total", "reaped")

    def __init__(
        self,
        batch: Optional[_PersistBatch],
        shares: Sequence[Tuple[int, memoryview, int, int]],
        span: Optional[Tuple[int, int]],
        total: int,
    ) -> None:
        #: Completion tracker; ``None`` when the pool was closed (shares
        #: run inline at reap time) or the batch was empty.
        self.batch = batch
        self.shares = shares
        self.span = span
        self.total = total
        self.reaped = False

    @property
    def writes_done(self) -> bool:
        """True once every queued share settled (fence still pending)."""
        return self.batch is None or self.batch.done.is_set()

    @property
    def done_at(self) -> Optional[float]:
        """Monotonic time the last device write settled, if known."""
        return None if self.batch is None else self.batch.done_at


class ParallelWriter:
    """Persist payloads through a pinned pool of ``p`` writer threads."""

    def __init__(
        self,
        device: PersistentDevice,
        num_threads: int,
        fence_mode: Optional[FenceMode] = None,
    ) -> None:
        if num_threads <= 0:
            raise EngineError(f"need at least one writer thread, got {num_threads}")
        self._device = device
        self._num_threads = num_threads
        self._fence_mode: FenceMode = fence_mode or default_fence_mode(device)
        self._share_align = max(1, device.preferred_align)
        self._work = threading.Condition(threading.Lock())
        self._queue: Deque[_ShareTask] = deque()
        self._workers: List[threading.Thread] = []
        self._closed = False
        self.bytes_persisted = 0
        #: Total worker threads ever created — stays <= ``num_threads``
        #: for the writer's whole life (the pool is reused, not respawned).
        self.threads_started = 0

    @property
    def num_threads(self) -> int:
        """Writer threads servicing persist calls (the parameter ``p``)."""
        return self._num_threads

    @property
    def fence_mode(self) -> FenceMode:
        """Active fence discipline."""
        return self._fence_mode

    @property
    def pool_size(self) -> int:
        """Live pooled workers (0 until the first multi-share persist)."""
        with self._work:
            return len(self._workers)

    @property
    def closed(self) -> bool:
        """True after :meth:`close`; persists then run inline."""
        with self._work:
            return self._closed

    # ------------------------------------------------------------------
    # persist API

    def persist(self, offset: int, payload: Buffer) -> None:
        """Durably write ``payload`` at ``offset``.

        Splits the payload across the writer threads; on return every byte
        is persisted (each thread fenced its range, or the caller's single
        barrier covered all of them).  Any thread failure is re-raised.
        ``payload`` may be any C-contiguous buffer — shares are memoryview
        slices, never copies.
        """
        view = as_view(payload)
        length = len(view)
        shares = split_range(length, self._num_threads, self._share_align)
        if not shares:
            return
        per_thread = self._fence_mode == "per-thread"
        if len(shares) == 1:
            # Single share: no hand-off overhead, same semantics.
            self._write_share(offset, view, shares[0], fence=per_thread)
            if self._fence_mode == "single":
                self._device.persist(offset, length)
            self._count(length)
            return
        self.reap(self.submit([(offset, view)]))

    def persist_many(self, pieces: Sequence[Tuple[int, Buffer]]) -> None:
        """Persist several ``(offset, payload)`` pieces as one batch.

        All pieces' shares go to the pool together under ONE lock
        acquisition (:meth:`submit`); in ``single`` fence mode the batch
        is covered by ONE fence spanning the pieces (they land at
        consecutive device offsets in the orchestrator's layout, §3.1),
        instead of one fence per piece.  ``per-thread`` mode is
        unchanged: every share fences its own range, as PMEM requires.
        """
        self.reap(self.submit(pieces))

    def submit(
        self, pieces: Sequence[Tuple[int, Buffer]]
    ) -> PersistSubmission:
        """Queue a batch of ``(offset, payload)`` pieces to the pool.

        Every share of every piece is enqueued under a single lock
        acquisition with a single ``notify_all`` — io_uring-style batched
        submission instead of one wakeup per piece.  Returns immediately
        with a :class:`PersistSubmission`; nothing is durable (and errors
        are not observable) until :meth:`reap`.
        """
        views = [(piece_offset, as_view(data)) for piece_offset, data in pieces]
        views = [(piece_offset, v) for piece_offset, v in views if len(v)]
        if not views:
            return PersistSubmission(None, (), None, 0)
        per_thread = self._fence_mode == "per-thread"
        shares = [
            (piece_offset, view, lo, hi)
            for piece_offset, view in views
            for lo, hi in split_range(
                len(view), self._num_threads, self._share_align
            )
        ]
        total = sum(len(v) for _, v in views)
        span_lo = min(piece_offset for piece_offset, _ in views)
        span_hi = max(
            piece_offset + len(view) for piece_offset, view in views
        )
        with self._work:
            if self._closed:
                # Pool is gone (engine closed): defer to reap, which runs
                # the shares inline in the caller's thread.
                return PersistSubmission(
                    None, shares, (span_lo, span_hi), total
                )
            batch = _PersistBatch(len(shares))
            self._ensure_workers()
            for piece_offset, view, lo, hi in shares:
                self._queue.append(
                    _ShareTask(piece_offset, view, lo, hi, per_thread, batch)
                )
            self._work.notify_all()
        return PersistSubmission(batch, shares, (span_lo, span_hi), total)

    def reap(self, submission: PersistSubmission) -> None:
        """Complete a :meth:`submit` batch: one wait, one covering fence.

        Blocks until every share settled, re-raises the first share
        failure, then (in ``single`` fence mode) issues ONE fence over
        the batch's covering span.  Idempotent — reaping twice is a
        no-op, so error-path cleanup can reap defensively.
        """
        if submission.reaped:
            return
        submission.reaped = True
        if submission.total == 0:
            return
        per_thread = self._fence_mode == "per-thread"
        if submission.batch is None:
            # Submitted after close: same semantics, caller's thread.
            for piece_offset, view, lo, hi in submission.shares:
                self._write_share(piece_offset, view, (lo, hi), fence=per_thread)
        else:
            submission.batch.done.wait()
            if submission.batch.errors:
                raise submission.batch.errors[0]
        if self._fence_mode == "single":
            span_lo, span_hi = submission.span
            self._device.persist(span_lo, span_hi - span_lo)
        self._count(submission.total)

    # ------------------------------------------------------------------
    # lifecycle

    def close(self) -> None:
        """Shut the worker pool down (idempotent).

        Workers drain any queued shares, then exit and are joined.
        Persist calls arriving afterwards still work — they execute
        inline in the caller's thread with identical fence semantics —
        so in-flight checkpoint tickets can finish after the engine
        closed, exactly as before the pool existed.
        """
        with self._work:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers)
            self._work.notify_all()
        for worker in workers:
            worker.join()
        with self._work:
            self._workers.clear()

    def __enter__(self) -> "ParallelWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # pool internals

    def _ensure_workers(self) -> None:
        # Caller holds self._work.  Spawned once, reused forever after.
        while len(self._workers) < self._num_threads:
            worker = threading.Thread(
                target=self._worker_loop,
                name=f"pccheck-writer-{len(self._workers)}",
                daemon=True,
            )
            self._workers.append(worker)
            self.threads_started += 1
            worker.start()

    def _worker_loop(self) -> None:
        while True:
            with self._work:
                while not self._queue and not self._closed:
                    self._work.wait()
                if self._queue:
                    task = self._queue.popleft()
                else:  # closed and drained
                    return
            error: Optional[BaseException] = None
            try:
                self._write_share(
                    task.offset, task.view, (task.lo, task.hi),
                    fence=task.fence,
                )
            except BaseException as exc:  # noqa: BLE001 - propagate crash injection
                error = exc
            task.batch.share_finished(error)

    def _write_share(
        self,
        offset: int,
        view: memoryview,
        share: Tuple[int, int],
        fence: bool,
    ) -> None:
        lo, hi = share
        self._device.write(offset + lo, view[lo:hi])
        if fence:
            self._device.persist(offset + lo, hi - lo)

    def _count(self, nbytes: int) -> None:
        with self._work:
            self.bytes_persisted += nbytes


def persist_scattered(
    writer: ParallelWriter, pieces: Sequence[Tuple[int, Buffer]]
) -> None:
    """Persist several (offset, payload) pieces through one writer.

    The orchestrator ensures chunks scattered across DRAM land at
    consecutive device offsets (§3.1); this helper persists such a chunk
    list as one batch — in ``single`` fence mode that means one fence for
    the whole batch rather than one per piece.
    """
    writer.persist_many(pieces)
