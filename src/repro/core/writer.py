"""Parallel persist: a persistent pool of ``p`` writer threads.

PCcheck shortens the persist phase by splitting each checkpoint (or chunk)
across multiple writer threads (§3.3, §5.4.2: 3 threads give up to 1.36×
over 1).  The fence discipline differs per medium, and the paper is
explicit about it (§4.1):

* **PMEM** — "every thread must also call a ``fence()`` within the
  ``persist`` function.  The fence is internal to each CPU, meaning that
  the main thread ... cannot call a fence to cover all data": each writer
  persists its own range (``fence_mode="per-thread"``).
* **SSD** — "the main thread can call a single ``msync()`` with the
  checkpoint address and persist the data, improving performance"
  (``fence_mode="single"``).

:func:`default_fence_mode` picks the right discipline for a device.

Two properties keep this path at device speed:

* **Zero-copy shares.**  Payloads are normalized to a ``memoryview`` once
  (:func:`repro.storage.device.as_view`) and each writer receives an O(1)
  slice of that view — the old per-share ``payload[lo:hi]`` ``bytes``
  copies are gone.
* **A pinned worker pool.**  The ``p`` writer threads are spawned once (on
  the first multi-share persist) and live for the writer's lifetime,
  taking work over a condition variable instead of paying a
  ``threading.Thread`` spawn/join per persist call.  Concurrent
  ``persist`` calls (one per in-flight checkpoint pipeline) interleave
  their shares on the same pool; each call tracks its own completion.

Writer threads propagate exceptions (including injected crashes) to the
calling ``persist``, so a power-loss mid-persist kills the checkpoint
exactly as it would in the real system — a worker survives the exception
and stays available for later work (the device, not the pool, is what
died).

:meth:`ParallelWriter.persist_many` persists a batch of scattered pieces
with ONE fence per batch in ``single`` mode (the orchestrator's
consecutive-chunk layout makes the covering range tight), instead of the
fence-per-piece amplification the naive loop pays.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, List, Literal, Optional, Sequence, Tuple

from repro.errors import EngineError
from repro.storage.device import Buffer, PersistentDevice, as_view
from repro.storage.pmem import SimulatedPMEM

FenceMode = Literal["per-thread", "single"]


def default_fence_mode(device: PersistentDevice) -> FenceMode:
    """Fence discipline the paper prescribes for this device type."""
    if isinstance(device, SimulatedPMEM):
        return "per-thread"
    return "single"


def split_range(length: int, parts: int) -> List[Tuple[int, int]]:
    """Split ``[0, length)`` into up to ``parts`` contiguous shares.

    Shares differ in size by at most one byte; zero-length shares are
    dropped, so fewer than ``parts`` tuples come back for tiny payloads.
    """
    if parts <= 0:
        raise EngineError(f"need at least one writer, got {parts}")
    if length < 0:
        raise EngineError(f"negative length {length}")
    base, extra = divmod(length, parts)
    shares: List[Tuple[int, int]] = []
    start = 0
    for index in range(parts):
        size = base + (1 if index < extra else 0)
        if size > 0:
            shares.append((start, start + size))
        start += size
    return shares


class _PersistBatch:
    """Completion tracker for one ``persist``/``persist_many`` call.

    Shares from many concurrent batches interleave on the pool; each
    batch counts down its own outstanding shares and collects the errors
    its shares raised, so failure propagation stays per-call exactly as
    it was with per-call thread spawning.
    """

    __slots__ = ("_lock", "_pending", "done", "errors")

    def __init__(self, pending: int) -> None:
        self._lock = threading.Lock()
        self._pending = pending
        self.done = threading.Event()
        self.errors: List[BaseException] = []

    def share_finished(self, error: Optional[BaseException]) -> None:
        with self._lock:
            if error is not None:
                self.errors.append(error)
            self._pending -= 1
            if self._pending == 0:
                self.done.set()


class _ShareTask:
    """One writer share: a zero-copy slice of a payload view."""

    __slots__ = ("offset", "view", "lo", "hi", "fence", "batch")

    def __init__(
        self,
        offset: int,
        view: memoryview,
        lo: int,
        hi: int,
        fence: bool,
        batch: _PersistBatch,
    ) -> None:
        self.offset = offset
        self.view = view
        self.lo = lo
        self.hi = hi
        self.fence = fence
        self.batch = batch


class ParallelWriter:
    """Persist payloads through a pinned pool of ``p`` writer threads."""

    def __init__(
        self,
        device: PersistentDevice,
        num_threads: int,
        fence_mode: Optional[FenceMode] = None,
    ) -> None:
        if num_threads <= 0:
            raise EngineError(f"need at least one writer thread, got {num_threads}")
        self._device = device
        self._num_threads = num_threads
        self._fence_mode: FenceMode = fence_mode or default_fence_mode(device)
        self._work = threading.Condition(threading.Lock())
        self._queue: Deque[_ShareTask] = deque()
        self._workers: List[threading.Thread] = []
        self._closed = False
        self.bytes_persisted = 0
        #: Total worker threads ever created — stays <= ``num_threads``
        #: for the writer's whole life (the pool is reused, not respawned).
        self.threads_started = 0

    @property
    def num_threads(self) -> int:
        """Writer threads servicing persist calls (the parameter ``p``)."""
        return self._num_threads

    @property
    def fence_mode(self) -> FenceMode:
        """Active fence discipline."""
        return self._fence_mode

    @property
    def pool_size(self) -> int:
        """Live pooled workers (0 until the first multi-share persist)."""
        with self._work:
            return len(self._workers)

    @property
    def closed(self) -> bool:
        """True after :meth:`close`; persists then run inline."""
        with self._work:
            return self._closed

    # ------------------------------------------------------------------
    # persist API

    def persist(self, offset: int, payload: Buffer) -> None:
        """Durably write ``payload`` at ``offset``.

        Splits the payload across the writer threads; on return every byte
        is persisted (each thread fenced its range, or the caller's single
        barrier covered all of them).  Any thread failure is re-raised.
        ``payload`` may be any C-contiguous buffer — shares are memoryview
        slices, never copies.
        """
        view = as_view(payload)
        length = len(view)
        shares = split_range(length, self._num_threads)
        if not shares:
            return
        per_thread = self._fence_mode == "per-thread"
        if len(shares) == 1:
            # Single share: no hand-off overhead, same semantics.
            self._write_share(offset, view, shares[0], fence=per_thread)
        else:
            self._run_shares(
                [(offset, view, lo, hi) for lo, hi in shares], fence=per_thread
            )
        if self._fence_mode == "single":
            self._device.persist(offset, length)
        self._count(length)

    def persist_many(self, pieces: Sequence[Tuple[int, Buffer]]) -> None:
        """Persist several ``(offset, payload)`` pieces as one batch.

        All pieces' shares go to the pool together; in ``single`` fence
        mode the batch is covered by ONE fence spanning the pieces (they
        land at consecutive device offsets in the orchestrator's layout,
        §3.1), instead of one fence per piece.  ``per-thread`` mode is
        unchanged: every share fences its own range, as PMEM requires.
        """
        views = [(piece_offset, as_view(data)) for piece_offset, data in pieces]
        views = [(piece_offset, v) for piece_offset, v in views if len(v)]
        if not views:
            return
        per_thread = self._fence_mode == "per-thread"
        shares = [
            (piece_offset, view, lo, hi)
            for piece_offset, view in views
            for lo, hi in split_range(len(view), self._num_threads)
        ]
        if len(shares) == 1:
            piece_offset, view, lo, hi = shares[0]
            self._write_share(piece_offset, view, (lo, hi), fence=per_thread)
        else:
            self._run_shares(shares, fence=per_thread)
        total = sum(len(v) for _, v in views)
        if self._fence_mode == "single":
            span_lo = min(piece_offset for piece_offset, _ in views)
            span_hi = max(
                piece_offset + len(view) for piece_offset, view in views
            )
            self._device.persist(span_lo, span_hi - span_lo)
        self._count(total)

    # ------------------------------------------------------------------
    # lifecycle

    def close(self) -> None:
        """Shut the worker pool down (idempotent).

        Workers drain any queued shares, then exit and are joined.
        Persist calls arriving afterwards still work — they execute
        inline in the caller's thread with identical fence semantics —
        so in-flight checkpoint tickets can finish after the engine
        closed, exactly as before the pool existed.
        """
        with self._work:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers)
            self._work.notify_all()
        for worker in workers:
            worker.join()
        with self._work:
            self._workers.clear()

    def __enter__(self) -> "ParallelWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # pool internals

    def _run_shares(
        self,
        shares: Sequence[Tuple[int, memoryview, int, int]],
        fence: bool,
    ) -> None:
        """Execute shares on the pool (or inline after close) and re-raise
        the first failure once every share settled."""
        batch = _PersistBatch(len(shares))
        with self._work:
            if self._closed:
                pooled = False
            else:
                pooled = True
                self._ensure_workers()
                for piece_offset, view, lo, hi in shares:
                    self._queue.append(
                        _ShareTask(piece_offset, view, lo, hi, fence, batch)
                    )
                self._work.notify_all()
        if not pooled:
            # Pool is gone (engine closed): same semantics, caller's thread.
            for piece_offset, view, lo, hi in shares:
                self._write_share(piece_offset, view, (lo, hi), fence=fence)
            return
        batch.done.wait()
        if batch.errors:
            raise batch.errors[0]

    def _ensure_workers(self) -> None:
        # Caller holds self._work.  Spawned once, reused forever after.
        while len(self._workers) < self._num_threads:
            worker = threading.Thread(
                target=self._worker_loop,
                name=f"pccheck-writer-{len(self._workers)}",
                daemon=True,
            )
            self._workers.append(worker)
            self.threads_started += 1
            worker.start()

    def _worker_loop(self) -> None:
        while True:
            with self._work:
                while not self._queue and not self._closed:
                    self._work.wait()
                if self._queue:
                    task = self._queue.popleft()
                else:  # closed and drained
                    return
            error: Optional[BaseException] = None
            try:
                self._write_share(
                    task.offset, task.view, (task.lo, task.hi),
                    fence=task.fence,
                )
            except BaseException as exc:  # noqa: BLE001 - propagate crash injection
                error = exc
            task.batch.share_finished(error)

    def _write_share(
        self,
        offset: int,
        view: memoryview,
        share: Tuple[int, int],
        fence: bool,
    ) -> None:
        lo, hi = share
        self._device.write(offset + lo, view[lo:hi])
        if fence:
            self._device.persist(offset + lo, hi - lo)

    def _count(self, nbytes: int) -> None:
        with self._work:
            self.bytes_persisted += nbytes


def persist_scattered(
    writer: ParallelWriter, pieces: Sequence[Tuple[int, Buffer]]
) -> None:
    """Persist several (offset, payload) pieces through one writer.

    The orchestrator ensures chunks scattered across DRAM land at
    consecutive device offsets (§3.1); this helper persists such a chunk
    list as one batch — in ``single`` fence mode that means one fence for
    the whole batch rather than one per piece.
    """
    writer.persist_many(pieces)
