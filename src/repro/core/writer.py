"""Parallel persist: p writer threads per checkpoint.

PCcheck shortens the persist phase by splitting each checkpoint (or chunk)
across multiple writer threads (§3.3, §5.4.2: 3 threads give up to 1.36×
over 1).  The fence discipline differs per medium, and the paper is
explicit about it (§4.1):

* **PMEM** — "every thread must also call a ``fence()`` within the
  ``persist`` function.  The fence is internal to each CPU, meaning that
  the main thread ... cannot call a fence to cover all data": each writer
  persists its own range (``fence_mode="per-thread"``).
* **SSD** — "the main thread can call a single ``msync()`` with the
  checkpoint address and persist the data, improving performance"
  (``fence_mode="single"``).

:func:`default_fence_mode` picks the right discipline for a device.
Writer threads propagate exceptions (including injected crashes) to the
caller, so a power-loss mid-persist kills the checkpoint exactly as it
would in the real system.
"""

from __future__ import annotations

import threading
from typing import List, Literal, Optional, Sequence, Tuple

from repro.errors import EngineError
from repro.storage.device import PersistentDevice
from repro.storage.pmem import SimulatedPMEM

FenceMode = Literal["per-thread", "single"]


def default_fence_mode(device: PersistentDevice) -> FenceMode:
    """Fence discipline the paper prescribes for this device type."""
    if isinstance(device, SimulatedPMEM):
        return "per-thread"
    return "single"


def split_range(length: int, parts: int) -> List[Tuple[int, int]]:
    """Split ``[0, length)`` into up to ``parts`` contiguous shares.

    Shares differ in size by at most one byte; zero-length shares are
    dropped, so fewer than ``parts`` tuples come back for tiny payloads.
    """
    if parts <= 0:
        raise EngineError(f"need at least one writer, got {parts}")
    if length < 0:
        raise EngineError(f"negative length {length}")
    base, extra = divmod(length, parts)
    shares: List[Tuple[int, int]] = []
    start = 0
    for index in range(parts):
        size = base + (1 if index < extra else 0)
        if size > 0:
            shares.append((start, start + size))
        start += size
    return shares


class ParallelWriter:
    """Persist contiguous payloads with ``p`` concurrent writer threads."""

    def __init__(
        self,
        device: PersistentDevice,
        num_threads: int,
        fence_mode: Optional[FenceMode] = None,
    ) -> None:
        if num_threads <= 0:
            raise EngineError(f"need at least one writer thread, got {num_threads}")
        self._device = device
        self._num_threads = num_threads
        self._fence_mode: FenceMode = fence_mode or default_fence_mode(device)
        self._lock = threading.Lock()
        self.bytes_persisted = 0

    @property
    def num_threads(self) -> int:
        """Writer threads per persist call (the parameter ``p``)."""
        return self._num_threads

    @property
    def fence_mode(self) -> FenceMode:
        """Active fence discipline."""
        return self._fence_mode

    def persist(self, offset: int, payload: bytes) -> None:
        """Durably write ``payload`` at ``offset``.

        Splits the payload across the writer threads; on return every byte
        is persisted (each thread fenced its range, or the caller's single
        barrier covered all of them).  Any thread failure is re-raised.
        """
        shares = split_range(len(payload), self._num_threads)
        if not shares:
            return
        if len(shares) == 1:
            # Single share: no thread spawn overhead, same semantics.
            self._write_share(offset, payload, shares[0])
            if self._fence_mode == "single":
                self._device.persist(offset, len(payload))
            self._count(len(payload))
            return
        errors: List[BaseException] = []
        threads = [
            threading.Thread(
                target=self._run_share,
                args=(offset, payload, share, errors),
                name=f"pccheck-writer-{index}",
                daemon=True,
            )
            for index, share in enumerate(shares)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        if self._fence_mode == "single":
            self._device.persist(offset, len(payload))
        self._count(len(payload))

    def _run_share(
        self,
        offset: int,
        payload: bytes,
        share: Tuple[int, int],
        errors: List[BaseException],
    ) -> None:
        try:
            self._write_share(offset, payload, share)
        except BaseException as exc:  # noqa: BLE001 - propagate crash injection
            errors.append(exc)

    def _write_share(
        self, offset: int, payload: bytes, share: Tuple[int, int]
    ) -> None:
        lo, hi = share
        self._device.write(offset + lo, payload[lo:hi])
        if self._fence_mode == "per-thread":
            self._device.persist(offset + lo, hi - lo)

    def _count(self, nbytes: int) -> None:
        with self._lock:
            self.bytes_persisted += nbytes


def persist_scattered(
    writer: ParallelWriter, pieces: Sequence[Tuple[int, bytes]]
) -> None:
    """Persist several (offset, payload) pieces through one writer.

    The orchestrator ensures chunks scattered across DRAM land at
    consecutive device offsets (§3.1); this helper persists such a chunk
    list in order.
    """
    for offset, payload in pieces:
        writer.persist(offset, payload)
