"""Elastic re-partitioning: recover an N-writer checkpoint onto M readers.

`recover_consistent` used to assume the restarted world has the same
size and shard layout as the one that wrote the checkpoint.  Real fleets
do not: spot preemption shrinks the world, scale-up grows it.  Following
Orbax's distributed checkpointing model, the global shard index
(:class:`~repro.core.sharding.ShardManifest`) makes the checkpoint
self-describing, and this module turns that index into a **reshard
plan** — per reader rank, which byte ranges of which writers' shards to
gather — and executes the plan through buffer views so each recovered
byte is copied exactly once into its reader's buffer (the PR-4
zero-copy budget).

Three slice shapes cover every (N, M) pair:

* **pass-through** — a reader's range coincides with one writer's shard
  (always the case when M == N);
* **split** — one writer's shard feeds several readers (growing the
  world, M > N);
* **merge** — several writers' shards feed one reader (shrinking,
  M < N).

Plans are pure data: :func:`plan_reshard` never touches payload bytes,
so it can be computed (and audited) before any I/O, and
:func:`execute_reshard` validates the payloads it is handed against the
manifest before gathering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.sharding import (
    ShardManifest,
    build_manifest,
    decode_shard,
    encode_shard,
    manifest_from_shards,
)
from repro.errors import ConfigError, CorruptCheckpointError

#: Slice shapes a plan is made of (``RankPlan.kind``).
PASS_THROUGH = "pass-through"
SPLIT = "split"
MERGE = "merge"


@dataclass(frozen=True)
class SourceSlice:
    """One gather: bytes of a writer's shard bound for a reader's shard."""

    writer_rank: int
    #: Offset of the slice inside the *writer's shard payload*.
    source_start: int
    length: int
    #: Offset of the slice inside the *reader's shard payload*.
    target_start: int


@dataclass(frozen=True)
class RankPlan:
    """Everything one reader rank gathers: its range and the slices."""

    reader_rank: int
    #: The reader's byte range of the global state.
    start: int
    length: int
    slices: Tuple[SourceSlice, ...]
    #: Full shard length of the single source writer (single-slice plans
    #: only; -1 when the plan merges several writers).
    source_len: int = -1

    @property
    def kind(self) -> str:
        """``pass-through``, ``split``, or ``merge`` (see module doc)."""
        if len(self.slices) > 1:
            return MERGE
        if not self.slices:
            return PASS_THROUGH  # an empty range trivially passes through
        (only,) = self.slices
        if only.source_start == 0 and only.length == self.source_len:
            return PASS_THROUGH
        return SPLIT


@dataclass(frozen=True)
class ReshardPlan:
    """The full N-writers → M-readers re-partitioning, as pure data."""

    manifest: ShardManifest
    target_world: int
    ranks: Tuple[RankPlan, ...]

    @property
    def kinds(self) -> Dict[str, int]:
        """How many reader ranks use each slice shape."""
        counts: Dict[str, int] = {PASS_THROUGH: 0, SPLIT: 0, MERGE: 0}
        for rank_plan in self.ranks:
            counts[rank_plan.kind] += 1
        return counts


def plan_reshard(manifest: ShardManifest, target_world: int) -> ReshardPlan:
    """Plan re-partitioning the manifest's state onto ``target_world``
    readers, using the same even split :func:`~repro.core.sharding.
    shard_payload` would produce for the new world."""
    if target_world < 1:
        raise ConfigError(
            f"need at least one reader rank, got {target_world}"
        )
    manifest.validate()
    writer_len = {
        entry.writer_rank: entry.length for entry in manifest.entries
    }
    if len(writer_len) != len(manifest.entries):
        raise CorruptCheckpointError(
            "manifest names the same writer rank for multiple ranges; "
            "re-partitioning needs one contiguous range per writer"
        )
    target = build_manifest(manifest.total_len, manifest.state_crc,
                            target_world)
    rank_plans: List[RankPlan] = []
    for reader in target.entries:
        slices: List[SourceSlice] = []
        for source in manifest.entries:
            lo = max(reader.start, source.start)
            hi = min(reader.stop, source.stop)
            if lo >= hi:
                continue
            slices.append(
                SourceSlice(
                    writer_rank=source.writer_rank,
                    source_start=lo - source.start,
                    length=hi - lo,
                    target_start=lo - reader.start,
                )
            )
        rank_plans.append(
            RankPlan(
                reader_rank=reader.writer_rank,
                start=reader.start,
                length=reader.length,
                slices=tuple(slices),
                source_len=(
                    writer_len[slices[0].writer_rank]
                    if len(slices) == 1 else -1
                ),
            )
        )
    return ReshardPlan(
        manifest=manifest, target_world=target_world, ranks=tuple(rank_plans)
    )


def gather_slices(
    length: int,
    slices: Sequence[SourceSlice],
    views: Dict[int, memoryview],
) -> bytearray:
    """Gather ``slices`` out of per-writer ``views`` into one buffer.

    The single-copy kernel both elastic recovery and striped-device
    reads share: each output byte is written exactly once, each source
    is read through a zero-copy view.  ``views`` maps
    :attr:`SourceSlice.writer_rank` (for a striped device: the member
    index) to that source's payload view.
    """
    out = bytearray(length)
    for piece in slices:
        source = views[piece.writer_rank]
        out[piece.target_start : piece.target_start + piece.length] = (
            source[piece.source_start : piece.source_start + piece.length]
        )
    return out


def execute_reshard(
    plan: ReshardPlan, shard_payloads: Sequence
) -> List[bytes]:
    """Gather each reader rank's bytes according to ``plan``.

    ``shard_payloads`` maps writer rank → that writer's shard *payload*
    (header stripped), any bytes-like object.  Each source is read
    through a zero-copy :class:`memoryview`; every output byte is
    written exactly once into its reader's buffer — one copy per
    recovered byte, matching the persist pipeline's budget.

    Returns the per-reader payloads (no shard headers; see
    :func:`reshard_shards` for self-describing output).
    """
    by_writer = {
        entry.writer_rank: entry for entry in plan.manifest.entries
    }
    views: Dict[int, memoryview] = {}
    for writer_rank, payload in enumerate(shard_payloads):
        entry = by_writer.get(writer_rank)
        if entry is None:
            raise CorruptCheckpointError(
                f"writer rank {writer_rank} is not in the manifest"
            )
        view = memoryview(payload).cast("B")
        if len(view) != entry.length:
            raise CorruptCheckpointError(
                f"writer rank {writer_rank}'s shard payload is "
                f"{len(view)} bytes; the manifest promises {entry.length}"
            )
        views[writer_rank] = view
    missing = sorted(set(by_writer) - set(views))
    if missing:
        raise CorruptCheckpointError(
            f"missing shard payloads for writer ranks {missing}"
        )
    return [
        bytes(gather_slices(rank_plan.length, rank_plan.slices, views))
        for rank_plan in plan.ranks
    ]


def reshard_shards(shards: Sequence, target_world: int) -> List[bytes]:
    """Re-partition self-describing shards onto ``target_world`` ranks.

    The inputs are shards as written by
    :func:`~repro.core.sharding.shard_payload` (in any order); the
    outputs are again self-describing shards — indexed for the new
    world, carrying the *same* state digest — so a later recovery (or a
    further reshard) treats them exactly like freshly written ones.
    Raises :class:`~repro.errors.CorruptCheckpointError` when the shards
    disagree about the state version or do not cover it.
    """
    decoded = sorted(
        (decode_shard(shard) for shard in shards),
        key=lambda pair: pair[0].offset,
    )
    manifest = manifest_from_shards([bytes(shard) for shard in shards])
    if target_world == len(manifest.entries) and all(
        info.index == rank for rank, (info, _) in enumerate(decoded)
    ):
        # Same world, same layout: hand the originals back bit-identical.
        return [bytes(shard) for shard in shards]
    by_writer = {info.index: piece for info, piece in decoded}
    plan = plan_reshard(manifest, target_world)
    payloads = execute_reshard(
        plan, [by_writer[rank] for rank in sorted(by_writer)]
    )
    return [
        encode_shard(
            index=rank_plan.reader_rank,
            count=target_world,
            total_len=manifest.total_len,
            offset=rank_plan.start,
            state_crc=manifest.state_crc,
            piece=payload,
        )
        for rank_plan, payload in zip(plan.ranks, payloads)
    ]
