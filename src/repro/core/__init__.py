"""PCcheck's core: the concurrent checkpointing algorithm and orchestration.

Public entry points:

* :class:`~repro.core.engine.CheckpointEngine` — the Listing 1 protocol.
* :class:`~repro.core.orchestrator.PCcheckOrchestrator` — concurrent
  pipelined checkpoint sessions over an engine.
* :func:`~repro.core.recovery.recover` — load the newest valid checkpoint.
* :func:`~repro.core.autotune.tune` — the §3.4 configuration tool.
* :mod:`~repro.core.distributed` — multi-worker consistency.
"""

from repro.core.adaptive import AdaptiveIntervalController, Ewma
from repro.core.atomics import AtomicCounter, AtomicFlag, AtomicReference
from repro.core.autotune import (
    TuningResult,
    expected_runtime,
    functional_tw_probe,
    max_concurrency,
    min_checkpoint_interval,
    tune,
)
from repro.core.chunking import ChunkPlan, plan_chunks
from repro.core.config import (
    MemoryFootprint,
    PCcheckConfig,
    SystemParameters,
    UserConstraints,
    baseline_footprint,
)
from repro.core.differential import (
    Delta,
    DifferentialCheckpointer,
    apply_delta,
    decode_delta,
    diff_states,
    encode_delta,
)
from repro.core.distributed import (
    BarrierRound,
    CheckpointBarrier,
    ConsistentCheckpoint,
    DistributedCoordinator,
    DistributedOrchestrator,
    DistributedWorker,
    RoundOutcome,
    recover_consistent,
    valid_checkpoints,
)
from repro.core.engine import CheckpointEngine, CheckpointResult, CheckpointTicket
from repro.core.inspect import DeviceReport, SlotReport, inspect_device, inspect_file
from repro.core.sharding import reassemble, shard_overhead_bytes, shard_payload
from repro.core.freelist import EMPTY, SlotQueue
from repro.core.layout import DeviceLayout, Geometry
from repro.core.meta import CheckMeta
from repro.core.orchestrator import CheckpointHandle, PCcheckOrchestrator
from repro.core.recovery import (
    PersistentIterator,
    RecoveredCheckpoint,
    find_committed,
    recover,
    try_recover,
)
from repro.core.snapshot import BytesSource, GPUSource, SnapshotSource
from repro.core.writer import ParallelWriter, default_fence_mode, split_range

__all__ = [
    "EMPTY",
    "AdaptiveIntervalController",
    "AtomicCounter",
    "Ewma",
    "AtomicFlag",
    "AtomicReference",
    "BarrierRound",
    "BytesSource",
    "CheckMeta",
    "CheckpointBarrier",
    "CheckpointEngine",
    "CheckpointHandle",
    "CheckpointResult",
    "CheckpointTicket",
    "Delta",
    "DeviceReport",
    "DifferentialCheckpointer",
    "ChunkPlan",
    "ConsistentCheckpoint",
    "DeviceLayout",
    "DistributedCoordinator",
    "DistributedOrchestrator",
    "DistributedWorker",
    "RoundOutcome",
    "GPUSource",
    "Geometry",
    "MemoryFootprint",
    "PCcheckConfig",
    "PCcheckOrchestrator",
    "ParallelWriter",
    "PersistentIterator",
    "RecoveredCheckpoint",
    "SlotQueue",
    "SlotReport",
    "SnapshotSource",
    "SystemParameters",
    "TuningResult",
    "UserConstraints",
    "apply_delta",
    "baseline_footprint",
    "decode_delta",
    "diff_states",
    "default_fence_mode",
    "encode_delta",
    "expected_runtime",
    "inspect_device",
    "inspect_file",
    "find_committed",
    "functional_tw_probe",
    "max_concurrency",
    "min_checkpoint_interval",
    "plan_chunks",
    "reassemble",
    "recover",
    "recover_consistent",
    "shard_overhead_bytes",
    "shard_payload",
    "split_range",
    "try_recover",
    "tune",
    "valid_checkpoints",
]
