"""On-device region layout: superblock, commit record, N+1 slots.

PCcheck dedicates ``(N + 1) * m`` bytes of persistent storage to hold up
to ``N`` concurrent checkpoints plus the guaranteed-valid latest one
(Table 1).  This module carves a :class:`~repro.storage.device.PersistentDevice`
into that layout::

    +------------------+ 0
    | superblock       |  identifies the region, pins geometry
    +------------------+ SUPERBLOCK_SIZE
    | commit record    |  CHECK_ADDR: newest committed checkpoint
    +------------------+ SUPERBLOCK_SIZE + RECORD_SIZE (page aligned)
    | slot 0 header    |  written after slot 0's payload persists
    | slot 0 payload   |
    +------------------+
    | slot 1 ...       |
    +------------------+

The superblock stores the geometry (slot count and size) with a CRC so a
reopened device is validated before recovery trusts any record on it.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import List, Optional

from repro.core.meta import RECORD_SIZE, CheckMeta, decode_slot_header
from repro.errors import LayoutError
from repro.storage.device import PersistentDevice

#: Reserved space for the superblock.
SUPERBLOCK_SIZE: int = 4096
#: Alignment of the slot region (keeps payloads page-aligned).
SLOT_ALIGN: int = 4096

_SB_MAGIC = b"PCCHKSB1"
# v1 body: magic(8s) version(I) num_slots(I) slot_size(Q), then crc(I)
_SB_STRUCT_V1 = struct.Struct("<8sIIQ")
# v2 body adds header_size(I) so payload offsets survive a reopen by a
# device with a different (or no) alignment hint.
_SB_STRUCT = struct.Struct("<8sIIQI")
_SB_VERSION = 2


def header_size_for_align(align: int) -> int:
    """On-device slot-header size for a device alignment hint.

    The slot header is :data:`RECORD_SIZE` bytes of content, but on a
    device with sector granularity the *payload* must start on a sector
    boundary or every payload write lands on the buffered fallback
    instead of O_DIRECT.  Pad the header to the alignment, capped at
    :data:`SLOT_ALIGN` — a page keeps any sane sector size aligned, and
    huge stripe sizes (megabytes) must not inflate every slot by a
    stripe.
    """
    if align <= 1:
        return RECORD_SIZE
    a = min(align, SLOT_ALIGN)
    return -(-RECORD_SIZE // a) * a


@dataclass(frozen=True)
class Geometry:
    """Physical layout parameters of a formatted checkpoint region."""

    num_slots: int
    slot_size: int
    #: On-device bytes reserved per slot for the header.  RECORD_SIZE on
    #: align-1 devices; padded to the sector size on aligned devices so
    #: payload offsets stay sector-aligned (ROADMAP item 3).
    header_size: int = RECORD_SIZE

    @property
    def payload_capacity(self) -> int:
        """Largest checkpoint payload a slot can hold."""
        return self.slot_size - self.header_size

    @property
    def data_offset(self) -> int:
        """Byte offset where slot 0 begins."""
        base = SUPERBLOCK_SIZE + RECORD_SIZE
        return ((base + SLOT_ALIGN - 1) // SLOT_ALIGN) * SLOT_ALIGN

    @property
    def total_size(self) -> int:
        """Device capacity required by this geometry."""
        return self.data_offset + self.num_slots * self.slot_size


class DeviceLayout:
    """A formatted checkpoint region on a persistent device.

    Create with :meth:`format` (initialises a blank region) or
    :meth:`open` (validates an existing one, e.g. after a crash).
    """

    def __init__(self, device: PersistentDevice, geometry: Geometry) -> None:
        self._device = device
        self._geometry = geometry

    # ------------------------------------------------------------------
    # construction

    @classmethod
    def format(
        cls, device: PersistentDevice, num_slots: int, slot_size: int
    ) -> "DeviceLayout":
        """Initialise ``device`` with ``num_slots`` slots of ``slot_size``.

        ``num_slots`` must be at least 2 — the paper's N concurrent
        checkpoints plus the always-valid one require N+1 ≥ 2 slots.
        Zeroes the commit record and every slot header so stale data from
        a previous use can never validate.
        """
        if num_slots < 2:
            raise LayoutError(
                f"need at least 2 slots (N>=1 concurrent + 1 valid), got {num_slots}"
            )
        if slot_size <= RECORD_SIZE:
            raise LayoutError(
                f"slot size {slot_size} leaves no room for payload "
                f"(header is {RECORD_SIZE} bytes)"
            )
        # Devices with sector/stripe granularity want slots to span a
        # whole number of sectors/stripes AND payloads to start on a
        # sector boundary (else O_DIRECT engines fall back to buffered
        # I/O for every payload write).  Pad the header to the alignment
        # and round the slot size up before the geometry is pinned in
        # the superblock, so a reopen (whatever device wraps the bytes
        # then) sees the same geometry it was formatted with.
        align = device.preferred_align
        header = header_size_for_align(align)
        if align > 1:
            implied_payload = slot_size - RECORD_SIZE
            slot_size = implied_payload + header
            slot_size = -(-slot_size // align) * align
        geometry = Geometry(
            num_slots=num_slots, slot_size=slot_size, header_size=header
        )
        if geometry.total_size > device.capacity:
            raise LayoutError(
                f"geometry needs {geometry.total_size} bytes but device "
                f"{device.name} has {device.capacity}"
            )
        layout = cls(device, geometry)
        body = _SB_STRUCT.pack(
            _SB_MAGIC, _SB_VERSION, num_slots, slot_size, header
        )
        superblock = body + struct.pack("<I", zlib.crc32(body))
        device.write(0, superblock)
        device.write(layout.commit_offset, bytes(RECORD_SIZE))
        for slot in range(num_slots):
            device.write(layout.slot_offset(slot), bytes(RECORD_SIZE))
        device.persist(0, geometry.data_offset + num_slots * slot_size)
        return layout

    @classmethod
    def open(cls, device: PersistentDevice) -> "DeviceLayout":
        """Attach to an already formatted device, validating the superblock.

        Accepts both the current (v2) superblock and legacy v1 regions,
        which had no ``header_size`` field (headers were always
        :data:`RECORD_SIZE`).  The version is read from the (fixed-offset)
        prefix first so each version's CRC covers its own body length.
        """
        prefix = device.read(0, 12)  # magic(8) + version(4)
        magic, version = struct.unpack("<8sI", prefix)
        if magic != _SB_MAGIC:
            raise LayoutError(f"{device.name} is not a PCcheck region")
        if version == 1:
            sb_struct = _SB_STRUCT_V1
        elif version == _SB_VERSION:
            sb_struct = _SB_STRUCT
        else:
            raise LayoutError(f"unsupported layout version {version}")
        raw = device.read(0, sb_struct.size + 4)
        body, (crc,) = raw[: sb_struct.size], struct.unpack(
            "<I", raw[sb_struct.size :]
        )
        if zlib.crc32(body) != crc:
            raise LayoutError(f"superblock CRC mismatch on {device.name}")
        if version == 1:
            _, _, num_slots, slot_size = sb_struct.unpack(body)
            header = RECORD_SIZE
        else:
            _, _, num_slots, slot_size, header = sb_struct.unpack(body)
        if not RECORD_SIZE <= header < slot_size:
            raise LayoutError(
                f"superblock on {device.name} has invalid header size "
                f"{header} for slot size {slot_size}"
            )
        geometry = Geometry(
            num_slots=num_slots, slot_size=slot_size, header_size=header
        )
        if geometry.total_size > device.capacity:
            raise LayoutError(
                f"superblock on {device.name} describes {geometry.total_size} "
                f"bytes but device has only {device.capacity}"
            )
        return cls(device, geometry)

    # ------------------------------------------------------------------
    # geometry accessors

    @property
    def device(self) -> PersistentDevice:
        """The underlying persistent device."""
        return self._device

    @property
    def geometry(self) -> Geometry:
        """The region's physical layout."""
        return self._geometry

    @property
    def num_slots(self) -> int:
        """Number of checkpoint slots (N + 1)."""
        return self._geometry.num_slots

    @property
    def payload_capacity(self) -> int:
        """Largest payload one slot can hold."""
        return self._geometry.payload_capacity

    @property
    def commit_offset(self) -> int:
        """Device offset of the CHECK_ADDR commit record."""
        return SUPERBLOCK_SIZE

    def slot_offset(self, slot: int) -> int:
        """Device offset of ``slot``'s header."""
        self._check_slot(slot)
        return self._geometry.data_offset + slot * self._geometry.slot_size

    def payload_offset(self, slot: int) -> int:
        """Device offset where ``slot``'s payload begins.

        ``header_size`` (not ``RECORD_SIZE``) past the slot header: on
        aligned devices the header is padded so payloads start on a
        sector boundary and O_DIRECT engines avoid the buffered fallback.
        """
        return self.slot_offset(slot) + self._geometry.header_size

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self._geometry.num_slots:
            raise LayoutError(
                f"slot {slot} out of range [0, {self._geometry.num_slots})"
            )

    # ------------------------------------------------------------------
    # record I/O

    def read_slot_header(self, slot: int) -> Optional[CheckMeta]:
        """The slot's header, or ``None`` when blank/torn."""
        raw = self._device.read(self.slot_offset(slot), RECORD_SIZE)
        return decode_slot_header(raw)

    def read_all_slot_headers(self) -> List[Optional[CheckMeta]]:
        """Headers of every slot, index-aligned."""
        return [self.read_slot_header(slot) for slot in range(self.num_slots)]

    def read_payload(self, meta: CheckMeta) -> bytes:
        """The payload bytes a validated header describes."""
        return self._device.read(self.payload_offset(meta.slot), meta.payload_len)
