"""Configuration auto-tuning — the tool of §3.4.

Given user constraints (DRAM budget M, storage budget S, max slowdown q)
and measured system parameters (iteration time t, checkpoint size m,
bandwidths), the tool finds:

* ``N*`` — the number of concurrent checkpoints minimising ``Tw / N``,
  where ``Tw(N)`` is the worst-case time from starting a checkpoint's
  GPU copy to its durable commit when N checkpoints contend; and
* ``f*`` — the minimum checkpoint interval keeping overhead below q
  (Eq. 3): ``f* = ceil(Tw / (N* · q · t))``.

``Tw(N)`` is measured empirically, like the paper's profiling round: a
probe callable runs checkpoints back-to-back at concurrency ``n`` and
reports the mean per-checkpoint wall time.  Two probes ship with the
library: :func:`functional_tw_probe` drives the real engine against a
bandwidth-throttled in-memory device, and the performance simulator
provides :func:`repro.sim.runner.simulated_tw_probe`.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.core.config import SystemParameters, UserConstraints
from repro.errors import ConfigError

#: A probe maps a candidate concurrency N to a measured Tw in seconds.
TwProbe = Callable[[int], float]


def min_checkpoint_interval(
    tw: float, num_concurrent: int, max_slowdown: float, iteration_time: float
) -> int:
    """Eq. 3: the minimum interval f* (iterations) for overhead <= q."""
    if tw < 0:
        raise ConfigError(f"Tw must be >= 0, got {tw}")
    if num_concurrent < 1:
        raise ConfigError(f"N must be >= 1, got {num_concurrent}")
    if max_slowdown < 1.0:
        raise ConfigError(f"q must be >= 1, got {max_slowdown}")
    if iteration_time <= 0:
        raise ConfigError(f"t must be positive, got {iteration_time}")
    overhead_budget = max(max_slowdown - 1.0, 1e-9)
    f_star = math.ceil(tw / (num_concurrent * overhead_budget * iteration_time))
    return max(1, f_star)


def slots_for_interval(
    tw: float, interval: int, max_slowdown: float, iteration_time: float
) -> int:
    """Eq. 3 solved for N: the smallest concurrent-slot quota that lets a
    tenant checkpoint every ``interval`` iterations within its overhead
    budget.

    :func:`min_checkpoint_interval` maps (Tw, N) to the minimum interval
    f*; this is its inverse — the multi-tenant service uses it to turn a
    tenant's requested cadence into the number of engine slots it must be
    allotted (``N >= Tw / (f · (q-1) · t)``), so quotas come straight out
    of the paper's model instead of being guessed.  The returned N always
    satisfies ``min_checkpoint_interval(tw, N, q, t) <= interval``.
    """
    if tw < 0:
        raise ConfigError(f"Tw must be >= 0, got {tw}")
    if interval < 1:
        raise ConfigError(f"interval f must be >= 1, got {interval}")
    if max_slowdown < 1.0:
        raise ConfigError(f"q must be >= 1, got {max_slowdown}")
    if iteration_time <= 0:
        raise ConfigError(f"t must be positive, got {iteration_time}")
    overhead_budget = max(max_slowdown - 1.0, 1e-9)
    slots = math.ceil(tw / (interval * overhead_budget * iteration_time))
    return max(1, slots)


@dataclass(frozen=True)
class TuningResult:
    """Outcome of a tuning run."""

    num_concurrent: int  # N*
    tw_seconds: float  # measured Tw at N*
    interval: int  # f*
    #: Tw measured for every candidate N, for sensitivity reporting.
    candidates: Dict[int, float]

    @property
    def tw_per_concurrent(self) -> float:
        """The objective the tuner minimises, Tw / N."""
        return self.tw_seconds / self.num_concurrent


def max_concurrency(system: SystemParameters, constraints: UserConstraints) -> int:
    """The storage-budget bound of Table 2: ``N <= S/m - 1``."""
    bound = constraints.storage_budget // system.checkpoint_size - 1
    if bound < 1:
        raise ConfigError(
            f"storage budget {constraints.storage_budget} cannot hold "
            f"two checkpoints of {system.checkpoint_size} bytes"
        )
    return bound


def tune(
    probe: TwProbe,
    system: SystemParameters,
    constraints: UserConstraints,
    max_candidates: int = 4,
) -> TuningResult:
    """Find N* and f* for a workload.

    Varies N in ``[1, min(S/m - 1, max_candidates)]``, measures Tw for
    each via ``probe``, and picks the N minimising Tw/N.  The paper
    observes 2–4 concurrent checkpoints already saturate storage
    bandwidth, so a small candidate cap keeps the profiling round cheap.
    """
    upper = min(max_concurrency(system, constraints), max_candidates)
    measurements: Dict[int, float] = {}
    best_n = 1
    best_objective = math.inf
    for candidate in range(1, upper + 1):
        tw = probe(candidate)
        if tw < 0:
            raise ConfigError(f"probe returned negative Tw {tw} for N={candidate}")
        measurements[candidate] = tw
        objective = tw / candidate
        if objective < best_objective:
            best_objective = objective
            best_n = candidate
    tw_star = measurements[best_n]
    interval = min_checkpoint_interval(
        tw_star, best_n, constraints.max_slowdown, system.iteration_time
    )
    return TuningResult(
        num_concurrent=best_n,
        tw_seconds=tw_star,
        interval=interval,
        candidates=measurements,
    )


def expected_runtime(
    total_iterations: int,
    iteration_time: float,
    interval: int,
    num_concurrent: int,
    tw: float,
) -> float:
    """The paper's runtime model (runtime_2 in §3.4).

    ``f·t + max(Tw, N·f·t) · (A/(f·N) - 1) + Tw`` — the first interval
    runs uncheckpointed, then groups of N intervals overlap with (or stall
    behind) one Tw, and the final checkpoint drains after training.
    """
    if interval < 1 or num_concurrent < 1:
        raise ConfigError("interval and concurrency must be >= 1")
    groups = total_iterations / (interval * num_concurrent)
    stride = max(tw, num_concurrent * interval * iteration_time)
    return interval * iteration_time + stride * max(groups - 1, 0) + tw


def functional_tw_probe(
    checkpoint_size: int,
    storage_bandwidth: float,
    writer_threads: int = 3,
    rounds: int = 3,
    issue_gap: Optional[float] = None,
) -> TwProbe:
    """Build a probe that measures Tw on the real engine.

    The probe formats a fresh bandwidth-throttled
    :class:`~repro.storage.ssd.InMemorySSD` with ``n + 1`` slots, then
    issues ``n × rounds`` checkpoints from ``n`` threads and reports the
    mean begin→commit wall time.  ``issue_gap`` (default: one payload's
    unthrottled persist time / n) spaces the issues like the paper's
    "initiates a checkpoint every t seconds" profiling round.
    """
    from concurrent.futures import ThreadPoolExecutor

    from repro.core.engine import CheckpointEngine
    from repro.core.layout import RECORD_SIZE, DeviceLayout
    from repro.storage.ssd import InMemorySSD

    payload = bytes(checkpoint_size)

    def probe(candidate_n: int) -> float:
        slot_size = checkpoint_size + RECORD_SIZE
        num_slots = candidate_n + 1
        capacity = 2 * SLOT_REGION_PAD + num_slots * slot_size
        device = InMemorySSD(capacity, persist_bandwidth=storage_bandwidth)
        layout = DeviceLayout.format(device, num_slots=num_slots, slot_size=slot_size)
        engine = CheckpointEngine(layout, writer_threads=writer_threads)
        gap = issue_gap
        if gap is None:
            gap = checkpoint_size / storage_bandwidth / max(candidate_n, 1) / 2

        durations = []

        def one_checkpoint(index: int) -> float:
            time.sleep(gap * index)
            start = time.monotonic()
            engine.checkpoint(payload, step=index)
            return time.monotonic() - start

        try:
            with ThreadPoolExecutor(max_workers=candidate_n) as pool:
                futures = [
                    pool.submit(one_checkpoint, index)
                    for index in range(candidate_n * rounds)
                ]
                durations = [future.result() for future in futures]
        finally:
            engine.close()
            device.close()
        return sum(durations) / len(durations)

    return probe


#: Padding around the metadata area used when sizing probe devices.
SLOT_REGION_PAD: int = 8192
