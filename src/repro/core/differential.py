"""Differential checkpointing — the Check-N-Run idea (§6), on PCcheck.

Check-N-Run (NSDI'22) observes that between consecutive checkpoints only
part of the training state changes, and checkpoints just the difference.
The paper lists this as *orthogonal* to PCcheck; this module composes the
two: full checkpoints ("anchors") and page-level deltas each flow through
their own concurrent checkpoint engine, so both inherit PCcheck's
non-blocking persistence and crash consistency.

Design
------
* The state is compared to the **last anchor** at ``page_size``
  granularity; changed pages become a delta payload tagged with the
  anchor's engine counter.
* Anchors are taken every ``anchor_every`` checkpoints, whenever the
  state size changes, or when the delta would exceed
  ``max_delta_fraction`` of a full checkpoint (at which point a delta
  saves nothing).
* Anchors and deltas live in **separate regions**: a delta is useless
  without its base, and giving anchors their own slots guarantees the
  base of any recoverable delta is never recycled underneath it.
* A delta is bound to its anchor by a **uniqueness token** — the
  anchor's engine counter *plus* its payload CRC.  The counter alone is
  ambiguous across restarts: after recovery the engine counter restarts
  from the recovered value, so a post-restart anchor can reuse the
  counter of a stale anchor still durable in the anchor region, and a
  counter-only match would let recovery apply a delta to the wrong
  base.  A counter match with a CRC mismatch is rejected as
  :class:`~repro.errors.CorruptCheckpointError`.
* Recovery loads the newest anchor, then the newest delta *that
  references it*; a delta chained to an older anchor is ignored (the
  anchor alone is a complete, newer-or-equal state).
* **Elastic restarts** compose with resharding
  (:mod:`repro.core.reshard`): a reshard rebinds anchors — each rank's
  partition boundary moved, so no previous delta base describes the new
  partition — and :meth:`DifferentialCheckpointer.mark_resharded` drops
  the base, forcing the next checkpoint to be a full anchor.  When the
  layout is *unchanged* across a restart,
  :meth:`DifferentialCheckpointer.adopt_anchor` rebinds the recovered
  anchor instead, so an elastic restart does not force a full rewrite.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.engine import CheckpointEngine
from repro.core.meta import payload_crc
from repro.core.recovery import try_recover
from repro.errors import ConfigError, CorruptCheckpointError

_DELTA_MAGIC = b"PCDELTA2"
# magic(8s) base_counter(Q) base_crc(I) total_len(Q) page_size(I) num_pages(I)
_DELTA_HEADER = struct.Struct("<8sQIQII")
_PAGE_HEADER = struct.Struct("<I")


@dataclass(frozen=True)
class Delta:
    """Changed pages of a state relative to a base.

    ``(base_counter, base_crc)`` is the anchor's uniqueness token: both
    must match the anchor a recovery wants to apply this delta to.
    """

    base_counter: int
    total_len: int
    page_size: int
    pages: Tuple[Tuple[int, bytes], ...]
    #: CRC32 of the full base state (the anchor's ``payload_crc``).
    base_crc: int = 0

    @property
    def nbytes(self) -> int:
        """Encoded size (headers + page payloads)."""
        return _DELTA_HEADER.size + sum(
            _PAGE_HEADER.size + len(data) for _, data in self.pages
        )


def diff_states(base: bytes, current: bytes, page_size: int,
                base_counter: int,
                base_crc: Optional[int] = None) -> Delta:
    """Page-level difference of two equal-length states.

    ``base_crc`` completes the anchor token; when ``None`` it is
    computed from ``base`` (callers that already hold the anchor's
    ``payload_crc`` pass it to skip the extra pass).
    """
    if page_size <= 0:
        raise ConfigError(f"page size must be positive, got {page_size}")
    if len(base) != len(current):
        raise ConfigError(
            f"differential checkpoint needs equal sizes, got "
            f"{len(base)} vs {len(current)}"
        )
    if base_crc is None:
        base_crc = payload_crc(base)
    pages: List[Tuple[int, bytes]] = []
    for index in range(0, len(current), page_size):
        base_page = base[index : index + page_size]
        current_page = current[index : index + page_size]
        if base_page != current_page:
            pages.append((index // page_size, current_page))
    return Delta(
        base_counter=base_counter,
        total_len=len(current),
        page_size=page_size,
        pages=tuple(pages),
        base_crc=base_crc,
    )


def apply_delta(base: bytes, delta: Delta) -> bytes:
    """Reconstruct the current state from a base and its delta."""
    if len(base) != delta.total_len:
        raise CorruptCheckpointError(
            f"delta expects a base of {delta.total_len} bytes, got {len(base)}"
        )
    out = bytearray(base)
    for page_index, data in delta.pages:
        start = page_index * delta.page_size
        if start + len(data) > len(out):
            raise CorruptCheckpointError("delta page outside state bounds")
        out[start : start + len(data)] = data
    return bytes(out)


def encode_delta(delta: Delta) -> bytes:
    """Serialize a delta to a checkpoint payload."""
    parts = [
        _DELTA_HEADER.pack(
            _DELTA_MAGIC, delta.base_counter, delta.base_crc,
            delta.total_len, delta.page_size, len(delta.pages),
        )
    ]
    for page_index, data in delta.pages:
        parts.append(_PAGE_HEADER.pack(page_index))
        parts.append(data)
    return b"".join(parts)


def decode_delta(raw: bytes) -> Delta:
    """Parse a delta payload; raises on any structural problem."""
    if len(raw) < _DELTA_HEADER.size:
        raise CorruptCheckpointError("truncated delta header")
    (magic, base_counter, base_crc, total_len, page_size,
     num_pages) = _DELTA_HEADER.unpack(raw[: _DELTA_HEADER.size])
    if magic != _DELTA_MAGIC:
        raise CorruptCheckpointError("not a PCcheck delta payload")
    pages: List[Tuple[int, bytes]] = []
    cursor = _DELTA_HEADER.size
    max_page = (total_len + page_size - 1) // page_size if page_size else 0
    for index in range(num_pages):
        if cursor + _PAGE_HEADER.size > len(raw):
            raise CorruptCheckpointError("truncated delta page header")
        (page_index,) = _PAGE_HEADER.unpack(
            raw[cursor : cursor + _PAGE_HEADER.size]
        )
        cursor += _PAGE_HEADER.size
        if page_index >= max_page:
            raise CorruptCheckpointError("delta page index out of range")
        start = page_index * page_size
        length = min(page_size, total_len - start)
        if cursor + length > len(raw):
            raise CorruptCheckpointError("truncated delta page data")
        pages.append((page_index, raw[cursor : cursor + length]))
        cursor += length
    return Delta(base_counter=base_counter, total_len=total_len,
                 page_size=page_size, pages=tuple(pages),
                 base_crc=base_crc)


@dataclass
class DifferentialStats:
    """Byte savings accounting."""

    full_checkpoints: int = 0
    delta_checkpoints: int = 0
    full_bytes: int = 0
    delta_bytes: int = 0

    @property
    def bytes_saved(self) -> int:
        """Bytes the deltas avoided writing vs. always-full."""
        if self.delta_checkpoints == 0 or self.full_checkpoints == 0:
            return 0
        mean_full = self.full_bytes / self.full_checkpoints
        return int(self.delta_checkpoints * mean_full - self.delta_bytes)


class DifferentialCheckpointer:
    """Anchors + deltas over two concurrent checkpoint engines."""

    def __init__(
        self,
        anchor_engine: CheckpointEngine,
        delta_engine: CheckpointEngine,
        page_size: int = 4096,
        anchor_every: int = 8,
        max_delta_fraction: float = 0.5,
    ) -> None:
        if page_size <= 0:
            raise ConfigError(f"page size must be positive, got {page_size}")
        if anchor_every < 1:
            raise ConfigError(f"anchor cadence must be >= 1, got {anchor_every}")
        if not 0.0 < max_delta_fraction <= 1.0:
            raise ConfigError(
                f"max delta fraction must be in (0, 1], got {max_delta_fraction}"
            )
        self._anchors = anchor_engine
        self._deltas = delta_engine
        self._page_size = page_size
        self._anchor_every = anchor_every
        self._max_fraction = max_delta_fraction
        self._since_anchor = 0
        self._base_state: Optional[bytes] = None
        self._base_counter: Optional[int] = None
        self._base_crc: Optional[int] = None
        self.stats = DifferentialStats()

    def checkpoint(self, state: bytes, step: int) -> str:
        """Persist ``state``; returns ``"full"`` or ``"delta"``."""
        needs_anchor = (
            self._base_state is None
            or self._since_anchor >= self._anchor_every - 1
            or len(state) != len(self._base_state)
        )
        if not needs_anchor:
            delta = diff_states(self._base_state, state, self._page_size,
                                self._base_counter,
                                base_crc=self._base_crc)
            if delta.nbytes <= self._max_fraction * len(state):
                payload = encode_delta(delta)
                self._deltas.checkpoint(payload, step=step)
                self._since_anchor += 1
                self.stats.delta_checkpoints += 1
                self.stats.delta_bytes += len(payload)
                return "delta"
        result = self._anchors.checkpoint(state, step=step)
        self._base_state = bytes(state)
        self._base_counter = result.counter
        self._base_crc = payload_crc(self._base_state)
        self._since_anchor = 0
        self.stats.full_checkpoints += 1
        self.stats.full_bytes += len(state)
        return "full"

    def mark_resharded(self) -> None:
        """A reshard rebound the anchors: invalidate the delta chain.

        After elastic recovery onto a different world
        (:func:`~repro.core.distributed.recover_consistent` with
        ``world_size``), every rank's partition boundary moved, so no
        prior anchor describes the new partition.  Deltas never cross a
        reshard boundary: the next :meth:`checkpoint` writes a full
        anchor, and the chain restarts from it.
        """
        self._base_state = None
        self._base_counter = None
        self._base_crc = None
        self._since_anchor = 0

    def adopt_anchor(self, state: bytes, counter: int,
                     crc: Optional[int] = None) -> None:
        """Rebind a recovered anchor as the delta base (layout unchanged).

        After an elastic restart whose reshard plan was pure
        pass-through — the world size and shard layout did not change —
        the recovered anchor is still a valid delta base.  Adopting it
        lets the first post-restart checkpoint be a delta instead of a
        full rewrite.  ``counter`` and ``crc`` are the recovered
        anchor's engine counter and ``payload_crc`` (``crc`` is
        computed from ``state`` when omitted); together they form the
        token post-restart deltas are stamped with.
        """
        if counter < 0:
            raise ConfigError(f"anchor counter must be >= 0, got {counter}")
        self._base_state = bytes(state)
        self._base_counter = counter
        self._base_crc = payload_crc(state) if crc is None else crc
        self._since_anchor = 0

    def recover(self) -> Optional[Tuple[int, bytes]]:
        """Newest reconstructible state as ``(step, bytes)``, or None.

        A delta is applied only when its full anchor token matches —
        base counter *and* base CRC.  A counter match with a CRC
        mismatch means the delta was stamped against a different state
        that happened to reuse the counter (engine counters restart
        from the recovered value, so a post-restart anchor can collide
        with a stale same-counter anchor): that is corruption, not
        staleness, and raises
        :class:`~repro.errors.CorruptCheckpointError`.
        """
        anchor = try_recover(self._anchors.layout)
        if anchor is None:
            return None
        delta_ckpt = try_recover(self._deltas.layout)
        if delta_ckpt is not None and delta_ckpt.meta.step > anchor.meta.step:
            try:
                delta = decode_delta(delta_ckpt.payload)
            except CorruptCheckpointError:
                delta = None
            if delta is not None and delta.base_counter == anchor.meta.counter:
                if delta.base_crc != anchor.meta.payload_crc:
                    raise CorruptCheckpointError(
                        f"delta for step {delta_ckpt.meta.step} references "
                        f"anchor counter {delta.base_counter} but its base "
                        f"token (crc {delta.base_crc:#010x}) does not match "
                        f"the anchor's payload crc "
                        f"{anchor.meta.payload_crc:#010x} — a stale "
                        f"same-counter anchor collided with the delta chain"
                    )
                return delta_ckpt.meta.step, apply_delta(anchor.payload, delta)
        return anchor.meta.step, anchor.payload
