"""Differential checkpointing — the Check-N-Run idea (§6), on PCcheck.

Check-N-Run (NSDI'22) observes that between consecutive checkpoints only
part of the training state changes, and checkpoints just the difference.
The paper lists this as *orthogonal* to PCcheck; this module composes the
two: full checkpoints ("anchors") and page-level deltas each flow through
their own concurrent checkpoint engine, so both inherit PCcheck's
non-blocking persistence and crash consistency.

Design
------
* The state is compared to the **last anchor** at ``page_size``
  granularity; changed pages become a delta payload tagged with the
  anchor's engine counter.
* Anchors are taken every ``anchor_every`` checkpoints, whenever the
  state size changes, or when the delta would exceed
  ``max_delta_fraction`` of a full checkpoint (at which point a delta
  saves nothing).
* Anchors and deltas live in **separate regions**: a delta is useless
  without its base, and giving anchors their own slots guarantees the
  base of any recoverable delta is never recycled underneath it.
* Recovery loads the newest anchor, then the newest delta *that
  references it*; a delta chained to an older anchor is ignored (the
  anchor alone is a complete, newer-or-equal state).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.engine import CheckpointEngine
from repro.core.recovery import try_recover
from repro.errors import ConfigError, CorruptCheckpointError

_DELTA_MAGIC = b"PCDELTA1"
# magic(8s) base_counter(Q) total_len(Q) page_size(I) num_pages(I)
_DELTA_HEADER = struct.Struct("<8sQQII")
_PAGE_HEADER = struct.Struct("<I")


@dataclass(frozen=True)
class Delta:
    """Changed pages of a state relative to a base."""

    base_counter: int
    total_len: int
    page_size: int
    pages: Tuple[Tuple[int, bytes], ...]

    @property
    def nbytes(self) -> int:
        """Encoded size (headers + page payloads)."""
        return _DELTA_HEADER.size + sum(
            _PAGE_HEADER.size + len(data) for _, data in self.pages
        )


def diff_states(base: bytes, current: bytes, page_size: int,
                base_counter: int) -> Delta:
    """Page-level difference of two equal-length states."""
    if page_size <= 0:
        raise ConfigError(f"page size must be positive, got {page_size}")
    if len(base) != len(current):
        raise ConfigError(
            f"differential checkpoint needs equal sizes, got "
            f"{len(base)} vs {len(current)}"
        )
    pages: List[Tuple[int, bytes]] = []
    for index in range(0, len(current), page_size):
        base_page = base[index : index + page_size]
        current_page = current[index : index + page_size]
        if base_page != current_page:
            pages.append((index // page_size, current_page))
    return Delta(
        base_counter=base_counter,
        total_len=len(current),
        page_size=page_size,
        pages=tuple(pages),
    )


def apply_delta(base: bytes, delta: Delta) -> bytes:
    """Reconstruct the current state from a base and its delta."""
    if len(base) != delta.total_len:
        raise CorruptCheckpointError(
            f"delta expects a base of {delta.total_len} bytes, got {len(base)}"
        )
    out = bytearray(base)
    for page_index, data in delta.pages:
        start = page_index * delta.page_size
        if start + len(data) > len(out):
            raise CorruptCheckpointError("delta page outside state bounds")
        out[start : start + len(data)] = data
    return bytes(out)


def encode_delta(delta: Delta) -> bytes:
    """Serialize a delta to a checkpoint payload."""
    parts = [
        _DELTA_HEADER.pack(
            _DELTA_MAGIC, delta.base_counter, delta.total_len,
            delta.page_size, len(delta.pages),
        )
    ]
    for page_index, data in delta.pages:
        parts.append(_PAGE_HEADER.pack(page_index))
        parts.append(data)
    return b"".join(parts)


def decode_delta(raw: bytes) -> Delta:
    """Parse a delta payload; raises on any structural problem."""
    if len(raw) < _DELTA_HEADER.size:
        raise CorruptCheckpointError("truncated delta header")
    magic, base_counter, total_len, page_size, num_pages = _DELTA_HEADER.unpack(
        raw[: _DELTA_HEADER.size]
    )
    if magic != _DELTA_MAGIC:
        raise CorruptCheckpointError("not a PCcheck delta payload")
    pages: List[Tuple[int, bytes]] = []
    cursor = _DELTA_HEADER.size
    max_page = (total_len + page_size - 1) // page_size if page_size else 0
    for index in range(num_pages):
        if cursor + _PAGE_HEADER.size > len(raw):
            raise CorruptCheckpointError("truncated delta page header")
        (page_index,) = _PAGE_HEADER.unpack(
            raw[cursor : cursor + _PAGE_HEADER.size]
        )
        cursor += _PAGE_HEADER.size
        if page_index >= max_page:
            raise CorruptCheckpointError("delta page index out of range")
        start = page_index * page_size
        length = min(page_size, total_len - start)
        if cursor + length > len(raw):
            raise CorruptCheckpointError("truncated delta page data")
        pages.append((page_index, raw[cursor : cursor + length]))
        cursor += length
    return Delta(base_counter=base_counter, total_len=total_len,
                 page_size=page_size, pages=tuple(pages))


@dataclass
class DifferentialStats:
    """Byte savings accounting."""

    full_checkpoints: int = 0
    delta_checkpoints: int = 0
    full_bytes: int = 0
    delta_bytes: int = 0

    @property
    def bytes_saved(self) -> int:
        """Bytes the deltas avoided writing vs. always-full."""
        if self.delta_checkpoints == 0 or self.full_checkpoints == 0:
            return 0
        mean_full = self.full_bytes / self.full_checkpoints
        return int(self.delta_checkpoints * mean_full - self.delta_bytes)


class DifferentialCheckpointer:
    """Anchors + deltas over two concurrent checkpoint engines."""

    def __init__(
        self,
        anchor_engine: CheckpointEngine,
        delta_engine: CheckpointEngine,
        page_size: int = 4096,
        anchor_every: int = 8,
        max_delta_fraction: float = 0.5,
    ) -> None:
        if page_size <= 0:
            raise ConfigError(f"page size must be positive, got {page_size}")
        if anchor_every < 1:
            raise ConfigError(f"anchor cadence must be >= 1, got {anchor_every}")
        if not 0.0 < max_delta_fraction <= 1.0:
            raise ConfigError(
                f"max delta fraction must be in (0, 1], got {max_delta_fraction}"
            )
        self._anchors = anchor_engine
        self._deltas = delta_engine
        self._page_size = page_size
        self._anchor_every = anchor_every
        self._max_fraction = max_delta_fraction
        self._since_anchor = 0
        self._base_state: Optional[bytes] = None
        self._base_counter: Optional[int] = None
        self.stats = DifferentialStats()

    def checkpoint(self, state: bytes, step: int) -> str:
        """Persist ``state``; returns ``"full"`` or ``"delta"``."""
        needs_anchor = (
            self._base_state is None
            or self._since_anchor >= self._anchor_every - 1
            or len(state) != len(self._base_state)
        )
        if not needs_anchor:
            delta = diff_states(self._base_state, state, self._page_size,
                                self._base_counter)
            if delta.nbytes <= self._max_fraction * len(state):
                payload = encode_delta(delta)
                self._deltas.checkpoint(payload, step=step)
                self._since_anchor += 1
                self.stats.delta_checkpoints += 1
                self.stats.delta_bytes += len(payload)
                return "delta"
        result = self._anchors.checkpoint(state, step=step)
        self._base_state = bytes(state)
        self._base_counter = result.counter
        self._since_anchor = 0
        self.stats.full_checkpoints += 1
        self.stats.full_bytes += len(state)
        return "full"

    def recover(self) -> Optional[Tuple[int, bytes]]:
        """Newest reconstructible state as ``(step, bytes)``, or None."""
        anchor = try_recover(self._anchors.layout)
        if anchor is None:
            return None
        delta_ckpt = try_recover(self._deltas.layout)
        if delta_ckpt is not None and delta_ckpt.meta.step > anchor.meta.step:
            try:
                delta = decode_delta(delta_ckpt.payload)
            except CorruptCheckpointError:
                delta = None
            if delta is not None and delta.base_counter == anchor.meta.counter:
                return delta_ckpt.meta.step, apply_delta(anchor.payload, delta)
        return anchor.meta.step, anchor.payload
