"""Atomic primitives used by the concurrent checkpoint algorithm.

The paper's algorithm (Listing 1) relies on two hardware primitives:

* an atomic fetch-and-add on the global checkpoint counter, and
* a compare-and-swap (CAS) on ``CHECK_ADDR``, the pointer to the latest
  persisted checkpoint.

CPython does not expose hardware CAS, so these classes emulate the same
semantics with a tiny per-object lock.  The observable behaviour — a
linearizable read/CAS/fetch-add interface — is identical to the hardware
primitive, which is what the correctness argument in the paper depends on.
The lock is private and never held across user code, so the emulation cannot
introduce deadlocks or change the algorithm's interleavings beyond what real
CAS would allow.
"""

from __future__ import annotations

import threading
from typing import Generic, Optional, TypeVar

T = TypeVar("T")


class AtomicCounter:
    """A monotonically increasing atomic integer (fetch-and-add).

    Mirrors the paper's ``g_counter``: every checkpoint obtains a unique,
    totally ordered sequence number via :meth:`fetch_add`.
    """

    def __init__(self, initial: int = 0) -> None:
        self._value = initial
        self._lock = threading.Lock()

    def fetch_add(self, amount: int = 1) -> int:
        """Atomically add ``amount`` and return the *previous* value."""
        with self._lock:
            old = self._value
            self._value += amount
            return old

    def add_fetch(self, amount: int = 1) -> int:
        """Atomically add ``amount`` and return the *new* value.

        Listing 1 uses ``atomic_add(&g_counter, 1)`` whose return value is
        used as the fresh checkpoint counter; ``add_fetch`` matches that
        convention (counters start at 1, and 0 is reserved for "no
        checkpoint yet").
        """
        with self._lock:
            self._value += amount
            return self._value

    def load(self) -> int:
        """Read the current value."""
        with self._lock:
            return self._value

    def store(self, value: int) -> None:
        """Overwrite the current value (used only by recovery)."""
        with self._lock:
            self._value = value


class AtomicReference(Generic[T]):
    """An atomic reference cell with compare-and-swap.

    Mirrors ``CHECK_ADDR`` from Listing 1.  ``compare_and_swap`` succeeds
    only when the cell still holds the expected object (identity
    comparison, like a pointer CAS), making lost updates impossible.
    """

    def __init__(self, initial: Optional[T] = None) -> None:
        self._ref: Optional[T] = initial
        self._lock = threading.Lock()

    def load(self) -> Optional[T]:
        """Read the current reference."""
        with self._lock:
            return self._ref

    def store(self, value: Optional[T]) -> None:
        """Unconditionally replace the reference (recovery only)."""
        with self._lock:
            self._ref = value

    def compare_and_swap(self, expected: Optional[T], new: Optional[T]) -> bool:
        """Install ``new`` iff the cell currently holds ``expected``.

        Returns ``True`` on success.  Uses identity comparison (``is``),
        matching pointer-width CAS on real hardware.
        """
        with self._lock:
            if self._ref is expected:
                self._ref = new
                return True
            return False


class AtomicFlag:
    """A once-settable boolean flag (used for shutdown signalling)."""

    def __init__(self) -> None:
        self._event = threading.Event()

    def set(self) -> None:
        """Raise the flag; idempotent."""
        self._event.set()

    def is_set(self) -> bool:
        """True once :meth:`set` has been called."""
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the flag is set or ``timeout`` elapses."""
        return self._event.wait(timeout)
