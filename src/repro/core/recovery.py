"""Recovery: find and load the newest valid checkpoint (§4.2).

``CHECK_ADDR`` (the commit record) points to the last consistent
checkpoint.  Recovery validates it — magic, record CRC, matching slot
header, and payload CRC — and loads the payload.  If the commit record
itself was torn by the crash, recovery falls back to scanning all slot
headers and picking the newest slot whose header and payload both
validate.  The fallback is sound because:

* headers are written and persisted only *after* the slot's payload is
  fully durable, so a valid header + matching payload CRC proves a
  complete checkpoint;
* a recycled slot being overwritten still carries its old header, but the
  payload underneath no longer matches that header's CRC, so it is
  rejected rather than trusted.

The loader is exposed as a *persistent iterator* that reads the payload in
chunks and logs every read location, mirroring the paper's recovery path
("loads the checkpoint ... with the help of a persistent iterator, which
logs data read locations").
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.core.layout import DeviceLayout
from repro.core.meta import (
    RECORD_SIZE,
    CheckMeta,
    decode_commit_record,
    decode_slot_header,
    payload_crc,
)
from repro.errors import (
    CorruptCheckpointError,
    CrashedDeviceError,
    LayoutError,
    NoCheckpointError,
    RemoteUnavailableError,
    StorageError,
)
from repro.obs.metrics import M, MetricsRegistry
from repro.obs.trace import NULL_TRACER

#: Default read granularity of the persistent iterator.
DEFAULT_READ_CHUNK: int = 4 * 1024 * 1024


@dataclass
class RecoveredCheckpoint:
    """A validated checkpoint ready to be restored into training state."""

    meta: CheckMeta
    payload: bytes
    #: Which mechanism located it: "commit-record" or "slot-scan".
    source: str = "commit-record"


@dataclass
class PersistentIterator:
    """Chunked payload reader that logs each read's device location."""

    layout: DeviceLayout
    meta: CheckMeta
    chunk_size: int = DEFAULT_READ_CHUNK
    read_log: List[Tuple[int, int]] = field(default_factory=list)

    def __iter__(self) -> Iterator[bytes]:
        base = self.layout.payload_offset(self.meta.slot)
        total = self.meta.payload_len
        for index in range(math.ceil(total / self.chunk_size) if total else 0):
            offset = index * self.chunk_size
            length = min(self.chunk_size, total - offset)
            self.read_log.append((base + offset, length))
            yield self.layout.device.read(base + offset, length)

    def read_all(self) -> bytes:
        """Materialise the whole payload."""
        return b"".join(self)


def find_committed(layout: DeviceLayout) -> Optional[CheckMeta]:
    """Locate the newest valid checkpoint's metadata, or ``None``.

    Fast path: the commit record.  Fallback: scan every slot header and
    validate payloads, keeping the highest counter that checks out.
    """
    meta = _from_commit_record(layout)
    if meta is not None:
        return meta
    return _from_slot_scan(layout)


def _from_commit_record(layout: DeviceLayout) -> Optional[CheckMeta]:
    raw = layout.device.read(layout.commit_offset, RECORD_SIZE)
    meta = decode_commit_record(raw)
    if meta is None:
        return None
    if meta.slot >= layout.num_slots:
        return None
    header = layout.read_slot_header(meta.slot)
    if header is None or header.counter != meta.counter:
        return None
    if not _payload_valid(layout, meta):
        return None
    return meta


def _from_slot_scan(layout: DeviceLayout) -> Optional[CheckMeta]:
    best: Optional[CheckMeta] = None
    for header in layout.read_all_slot_headers():
        if header is None:
            continue
        if header.payload_len > layout.payload_capacity:
            continue
        if best is not None and header.counter <= best.counter:
            continue
        if _payload_valid(layout, header):
            best = header
    return best


def _payload_valid(layout: DeviceLayout, meta: CheckMeta) -> bool:
    if meta.payload_len > layout.payload_capacity:
        return False
    payload = layout.read_payload(meta)
    return payload_crc(payload) == meta.payload_crc


def recover(
    layout: DeviceLayout,
    chunk_size: int = DEFAULT_READ_CHUNK,
    max_attempts: int = 8,
    metrics: Optional[MetricsRegistry] = None,
    tracer=None,
) -> RecoveredCheckpoint:
    """Load the newest valid checkpoint from a formatted region.

    The returned payload is re-validated against the header CRC *after*
    the chunked read: when recovery runs concurrently with writers (an
    online reader polling the region), a slot located via the scan path
    can be recycled and overwritten between locating it and reading it —
    the post-read check catches that and the attempt is retried against
    the region's newer state.  After a crash there are no writers, so the
    first attempt always suffices.

    ``metrics``/``tracer`` record the restart-path telemetry the Eq. 4
    recovery bound is checked against: wall-clock recovery seconds, bytes
    re-read, and attempts.

    Raises :class:`~repro.errors.NoCheckpointError` when the region holds
    no valid checkpoint (fresh format, or every record was torn).
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    span = tracer.begin("recovery", device=layout.device.name)
    start = time.monotonic()

    def _observe(outcome: str, meta: Optional[CheckMeta] = None,
                 nbytes: int = 0, attempts: int = 0) -> None:
        if metrics is not None:
            metrics.observe(M.RECOVERY_SECONDS, time.monotonic() - start)
            metrics.inc(M.RECOVERY_ATTEMPTS, max(attempts, 1))
            if nbytes:
                metrics.inc(M.RECOVERY_BYTES, nbytes)
        tracer.end(
            span,
            outcome=outcome,
            counter=meta.counter if meta is not None else None,
        )

    for attempt in range(max_attempts):
        meta = _from_commit_record(layout)
        source = "commit-record"
        if meta is None:
            meta = _from_slot_scan(layout)
            source = "slot-scan"
        if meta is None:
            _observe("no-checkpoint", attempts=attempt + 1)
            raise NoCheckpointError(
                f"no valid checkpoint found on {layout.device.name}"
            )
        iterator = PersistentIterator(layout, meta, chunk_size=chunk_size)
        payload = iterator.read_all()
        if payload_crc(payload) == meta.payload_crc:
            _observe(source, meta=meta, nbytes=len(payload),
                     attempts=attempt + 1)
            return RecoveredCheckpoint(meta=meta, payload=payload,
                                       source=source)
    _observe("unstable", attempts=max_attempts)
    raise NoCheckpointError(
        f"checkpoint on {layout.device.name} kept changing under the "
        f"reader ({max_attempts} attempts)"
    )


def recover_striped(
    members,
    chunk_size: int = DEFAULT_READ_CHUNK,
    max_attempts: int = 8,
    metrics: Optional[MetricsRegistry] = None,
    tracer=None,
) -> RecoveredCheckpoint:
    """Reassemble and recover a checkpoint striped across ``members``.

    Opens the stripe set (validating every member's CRC-protected
    manifest), attaches to the region's layout, and runs :func:`recover`
    — the striped device's reads gather each payload chunk through the
    reshard machinery, so the recovered payload is bit-identical to what
    was persisted.  A member that dies mid-recovery surfaces as the same
    typed :class:`~repro.errors.CorruptCheckpointError` (naming the
    device) that :meth:`~repro.storage.striped.StripedDevice.open`
    raises for a member that is already unreadable — callers see ONE
    failure mode for a degraded stripe set, never a short payload.
    """
    # Imported here: repro.storage.striped pulls in the reshard gather
    # kernel from repro.core, and a module-level import would cycle.
    from repro.storage.striped import StripedDevice

    device = StripedDevice.open(members)
    try:
        layout = DeviceLayout.open(device)
        return recover(layout, chunk_size, max_attempts=max_attempts,
                       metrics=metrics, tracer=tracer)
    except CrashedDeviceError as exc:
        raise CorruptCheckpointError(
            f"stripe member failed during striped recovery: {exc}"
        ) from exc


def recover_tiered(
    hot,
    warm=None,
    remote=None,
    chunk_size: int = DEFAULT_READ_CHUNK,
    max_attempts: int = 8,
    metrics: Optional[MetricsRegistry] = None,
    tracer=None,
) -> RecoveredCheckpoint:
    """Recover from a tiered stack, walking tiers fastest-first.

    ``hot`` may be a :class:`~repro.storage.tiering.TieredDevice` (its
    ``warm``/``remote`` members are used) or a plain device with the
    colder tiers passed explicitly.  The walk order is the latency
    order: **hot → warm → remote**.  Each local tier is opened and
    recovered independently — a corrupt superblock, torn records, a
    crashed device, or a mismatched payload CRC all *fall through* to
    the next tier rather than failing recovery.  The remote tier is
    scanned newest-blob-first, re-validating each blob's embedded header
    and payload CRC (an eventually-visible PUT that has not settled is
    simply not listed yet — the checkpoint is then served by a faster
    tier or lost with the ingest pipeline, never half-read).

    A warm/remote copy can legitimately be *older* than the hot commit
    (demotion is asynchronous); the walk returns the first tier that
    yields any valid checkpoint, because a faster tier holding data is
    always at least as new as the tiers below it.

    Raises :class:`~repro.errors.NoCheckpointError` whose message names
    every tier's typed failure when no tier can serve a checkpoint.
    """
    # Imported here: repro.storage.tiering builds on core.writer, and a
    # module-level import would cycle through the storage package.
    from repro.storage.tiering import REMOTE_PREFIX

    if warm is None and hasattr(hot, "warm"):
        warm = hot.warm
    if remote is None and hasattr(hot, "remote"):
        remote = hot.remote
    failures: List[Tuple[str, BaseException]] = []

    def _note(tier: str, outcome: str) -> None:
        if metrics is not None:
            metrics.inc(M.TIER_RECOVERY_ATTEMPTS, tier=tier, outcome=outcome)

    for tier, device in (("hot", hot), ("warm", warm)):
        if device is None:
            continue
        try:
            layout = DeviceLayout.open(device)
            result = recover(layout, chunk_size, max_attempts=max_attempts,
                             metrics=metrics, tracer=tracer)
        except (LayoutError, NoCheckpointError, CorruptCheckpointError,
                StorageError) as exc:
            failures.append((tier, exc))
            _note(tier, type(exc).__name__)
            continue
        _note(tier, "recovered")
        result.source = f"{tier}:{result.source}"
        return result

    if remote is not None:
        try:
            keys = remote.list(REMOTE_PREFIX)
            for key in reversed(keys):  # newest counter first
                blob = remote.get(key)
                meta = decode_slot_header(blob[:RECORD_SIZE])
                if meta is None:
                    continue
                payload = blob[RECORD_SIZE:RECORD_SIZE + meta.payload_len]
                if payload_crc(payload) != meta.payload_crc:
                    continue
                _note("remote", "recovered")
                if metrics is not None:
                    metrics.inc(M.RECOVERY_BYTES, len(payload))
                return RecoveredCheckpoint(
                    meta=meta, payload=payload, source="remote"
                )
            failures.append(("remote", NoCheckpointError(
                f"no valid blob among {len(keys)} under {REMOTE_PREFIX!r}"
            )))
            _note("remote", "NoCheckpointError")
        except (RemoteUnavailableError, KeyError) as exc:
            failures.append(("remote", exc))
            _note("remote", type(exc).__name__)

    detail = "; ".join(
        f"{tier}: {type(exc).__name__}({exc})" for tier, exc in failures
    )
    raise NoCheckpointError(
        f"no tier holds a valid checkpoint ({detail or 'no tiers given'})"
    )


def try_recover(
    layout: DeviceLayout,
    chunk_size: int = DEFAULT_READ_CHUNK,
    max_attempts: int = 8,
    metrics: Optional[MetricsRegistry] = None,
    tracer=None,
) -> Optional[RecoveredCheckpoint]:
    """Like :func:`recover` but returns ``None`` instead of raising.

    Forwards the caller's ``max_attempts`` retry budget to
    :func:`recover` — an online reader bounding its polling latency gets
    the same bound on both entry points.
    """
    try:
        return recover(layout, chunk_size, max_attempts=max_attempts,
                       metrics=metrics, tracer=tracer)
    except NoCheckpointError:
        return None
