"""Checkpoint-region inspection: what exactly is on this device?

An operator recovering a training job wants to see every checkpoint a
region holds, its validity, and which one recovery would choose — before
touching anything.  :func:`inspect_device` produces that report, and
``pccheck-repro inspect <path>`` renders it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.layout import DeviceLayout
from repro.core.meta import RECORD_SIZE, CheckMeta, decode_commit_record, payload_crc
from repro.errors import LayoutError, StorageError
from repro.storage.device import PersistentDevice
from repro.storage.ssd import FileBackedSSD


@dataclass(frozen=True)
class SlotReport:
    """Status of one checkpoint slot."""

    slot: int
    status: str  # "valid" | "blank" | "corrupt-payload" | "oversized" | "unreadable"
    counter: Optional[int] = None
    step: Optional[int] = None
    payload_len: Optional[int] = None


@dataclass
class DeviceReport:
    """Full inspection result for one region."""

    device_name: str
    formatted: bool
    num_slots: int = 0
    slot_size: int = 0
    commit_record: Optional[CheckMeta] = None
    commit_record_trusted: bool = False
    slots: List[SlotReport] = field(default_factory=list)
    #: What :func:`repro.core.recovery.recover` would return.
    recovery_choice: Optional[CheckMeta] = None
    recovery_source: Optional[str] = None

    @property
    def valid_checkpoints(self) -> List[SlotReport]:
        """Slots holding complete, CRC-verified checkpoints."""
        return [s for s in self.slots if s.status == "valid"]

    def summary_lines(self) -> List[str]:
        """Human-readable report lines."""
        lines = [f"device: {self.device_name}"]
        if not self.formatted:
            lines.append("NOT a formatted PCcheck region")
            return lines
        lines.append(
            f"geometry: {self.num_slots} slots x {self.slot_size} bytes"
        )
        if self.commit_record is None:
            lines.append("commit record: blank or torn")
        else:
            trust = "verified" if self.commit_record_trusted else "UNTRUSTED"
            lines.append(
                f"commit record: counter={self.commit_record.counter} "
                f"slot={self.commit_record.slot} "
                f"step={self.commit_record.step} [{trust}]"
            )
        for slot in self.slots:
            detail = ""
            if slot.counter is not None:
                detail = (f" counter={slot.counter} step={slot.step} "
                          f"len={slot.payload_len}")
            lines.append(f"slot {slot.slot}: {slot.status}{detail}")
        if self.recovery_choice is None:
            lines.append("recovery: NO valid checkpoint")
        else:
            lines.append(
                f"recovery: step {self.recovery_choice.step} "
                f"(counter {self.recovery_choice.counter}, via "
                f"{self.recovery_source})"
            )
        return lines


def inspect_device(device: PersistentDevice) -> DeviceReport:
    """Inspect a formatted (or unformatted) checkpoint region."""
    report = DeviceReport(device_name=device.name, formatted=False)
    try:
        layout = DeviceLayout.open(device)
    except (LayoutError, StorageError):
        # Unformatted, or so truncated that even the superblock cannot be
        # read — either way there is nothing trustworthy on the device.
        return report
    report.formatted = True
    report.num_slots = layout.num_slots
    report.slot_size = layout.geometry.slot_size

    try:
        raw = device.read(layout.commit_offset, RECORD_SIZE)
        report.commit_record = decode_commit_record(raw)
    except StorageError:
        report.commit_record = None

    for slot in range(layout.num_slots):
        try:
            header = layout.read_slot_header(slot)
        except StorageError:
            report.slots.append(SlotReport(slot=slot, status="unreadable"))
            continue
        if header is None:
            report.slots.append(SlotReport(slot=slot, status="blank"))
            continue
        if header.payload_len > layout.payload_capacity:
            report.slots.append(
                SlotReport(slot=slot, status="oversized",
                           counter=header.counter, step=header.step,
                           payload_len=header.payload_len)
            )
            continue
        try:
            payload = layout.read_payload(header)
        except StorageError:
            report.slots.append(
                SlotReport(slot=slot, status="unreadable",
                           counter=header.counter, step=header.step,
                           payload_len=header.payload_len)
            )
            continue
        status = (
            "valid" if payload_crc(payload) == header.payload_crc
            else "corrupt-payload"
        )
        report.slots.append(
            SlotReport(slot=slot, status=status, counter=header.counter,
                       step=header.step, payload_len=header.payload_len)
        )

    if report.commit_record is not None:
        pointed = next(
            (s for s in report.slots if s.slot == report.commit_record.slot),
            None,
        )
        report.commit_record_trusted = (
            pointed is not None
            and pointed.status == "valid"
            and pointed.counter == report.commit_record.counter
        )

    from repro.core.recovery import find_committed

    choice = find_committed(layout)
    report.recovery_choice = choice
    if choice is not None:
        report.recovery_source = (
            "commit-record" if report.commit_record_trusted
            and report.commit_record is not None
            and choice.counter == report.commit_record.counter
            else "slot-scan"
        )
    return report


def inspect_file(path: str) -> DeviceReport:
    """Inspect a file-backed region without modifying it."""
    size = os.path.getsize(path)
    if size == 0:
        return DeviceReport(device_name=f"ssd:{path}", formatted=False)
    device = FileBackedSSD(path, capacity=size)
    try:
        return inspect_device(device)
    finally:
        device.close()
