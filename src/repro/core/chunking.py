"""Chunk planning for pipelined checkpoints (§3.1, Figure 7).

PCcheck can split a checkpoint into chunks so that persisting chunk ``i``
overlaps with snapshotting chunk ``i+1``, and DRAM staging buffers are
recycled as soon as their chunk is durable.  A :class:`ChunkPlan` is the
static description of that split: consecutive ``(offset, length)`` ranges
covering the payload, each at most the DRAM buffer size ``b``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.errors import ConfigError
from repro.storage.device import Buffer, as_view


@dataclass(frozen=True)
class ChunkPlan:
    """Consecutive chunk ranges covering a payload of ``total`` bytes."""

    total: int
    chunk_size: int

    def __post_init__(self) -> None:
        if self.total < 0:
            raise ConfigError(f"payload size must be >= 0, got {self.total}")
        if self.chunk_size <= 0:
            raise ConfigError(f"chunk size must be positive, got {self.chunk_size}")

    @property
    def num_chunks(self) -> int:
        """Number of chunks (at least 1 even for an empty payload)."""
        return max(1, math.ceil(self.total / self.chunk_size))

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        if self.total == 0:
            yield (0, 0)
            return
        offset = 0
        while offset < self.total:
            length = min(self.chunk_size, self.total - offset)
            yield (offset, length)
            offset += length

    def ranges(self) -> List[Tuple[int, int]]:
        """All chunk ranges as a list."""
        return list(self)


def aligned_chunk_size(chunk_size: int, align: int) -> int:
    """Round ``chunk_size`` up to a multiple of ``align``.

    Devices with sector or stripe granularity
    (:attr:`repro.storage.device.PersistentDevice.preferred_align` > 1)
    want chunk boundaries — and therefore persist offsets — on that
    grid; the service pool rounds its pipeline chunk size through this
    before building DRAM staging buffers.
    """
    if chunk_size <= 0:
        raise ConfigError(f"chunk size must be positive, got {chunk_size}")
    if align <= 1:
        return chunk_size
    return -(-chunk_size // align) * align


def plan_chunks(
    total: int, chunk_size: Optional[int], align: int = 1
) -> ChunkPlan:
    """Build a plan; ``chunk_size=None`` means a single whole-payload chunk
    (the non-pipelined variant of Figure 6).  ``align`` rounds the chunk
    size up so every interior chunk boundary lands on the device's
    preferred alignment."""
    if chunk_size is None:
        return ChunkPlan(total=total, chunk_size=max(total, 1))
    return ChunkPlan(
        total=total, chunk_size=aligned_chunk_size(chunk_size, align)
    )


def iter_chunk_views(
    plan: ChunkPlan, payload: Buffer
) -> Iterator[Tuple[int, memoryview]]:
    """Yield ``(offset, view)`` per chunk of ``payload`` — zero copies.

    Each view is an O(1) memoryview slice of the payload, suitable for
    feeding straight into ``ticket.write_chunk`` or
    :func:`repro.core.writer.persist_scattered` without ever
    materializing a per-chunk ``bytes`` object.
    """
    view = as_view(payload)
    if len(view) != plan.total:
        raise ConfigError(
            f"payload of {len(view)} bytes does not match plan total "
            f"{plan.total}"
        )
    for offset, length in plan:
        yield offset, view[offset : offset + length]
