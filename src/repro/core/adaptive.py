"""Adaptive checkpoint frequency — the extension sketched in §3.4.

The paper notes that the optimal checkpoint interval can drift during
training ("vision model training is input-bound ... LLM training
commonly offloads activations to CPU memory and disk. This behavior
might necessitate adapting the checkpoint frequency during training. We
plan to extend PCcheck by monitoring training throughput and traffic
between GPU, CPU, and storage, and adapt (3) accordingly").

:class:`AdaptiveIntervalController` implements that loop: it observes
per-iteration times ``t`` and per-checkpoint write times ``Tw`` as
exponentially weighted moving averages and, at a configurable cadence,
re-evaluates Eq. 3::

    f* = ceil(Tw / (N · (q − 1) · t))

clamped to ``[min_interval, max_interval]`` and damped (the new interval
moves at most ``max_step_ratio`` per adjustment) so transient hiccups
don't whipsaw the schedule.  The controller is pure bookkeeping — the
trainer asks :meth:`should_checkpoint` each iteration and reports
measurements back — so it composes with any strategy.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.core.autotune import min_checkpoint_interval
from repro.errors import ConfigError


class Ewma:
    """Exponentially weighted moving average."""

    def __init__(self, alpha: float = 0.2) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ConfigError(f"alpha must be in (0, 1], got {alpha}")
        self._alpha = alpha
        self._value: Optional[float] = None

    def update(self, sample: float) -> float:
        """Fold in a sample; returns the new average."""
        if self._value is None:
            self._value = sample
        else:
            self._value += self._alpha * (sample - self._value)
        return self._value

    @property
    def value(self) -> Optional[float]:
        """Current average (``None`` before the first sample)."""
        return self._value


class AdaptiveIntervalController:
    """Re-derives the checkpoint interval from live measurements."""

    def __init__(
        self,
        num_concurrent: int,
        max_slowdown: float,
        initial_interval: int = 10,
        min_interval: int = 1,
        max_interval: int = 1000,
        adjust_every: int = 50,
        alpha: float = 0.2,
        max_step_ratio: float = 2.0,
    ) -> None:
        if num_concurrent < 1:
            raise ConfigError(f"N must be >= 1, got {num_concurrent}")
        if max_slowdown <= 1.0:
            raise ConfigError(
                f"q must exceed 1 for a finite interval, got {max_slowdown}"
            )
        if not 1 <= min_interval <= initial_interval <= max_interval:
            raise ConfigError(
                f"need min <= initial <= max interval, got "
                f"{min_interval}/{initial_interval}/{max_interval}"
            )
        if adjust_every < 1:
            raise ConfigError(f"adjust_every must be >= 1, got {adjust_every}")
        if max_step_ratio <= 1.0:
            raise ConfigError(
                f"max_step_ratio must exceed 1, got {max_step_ratio}"
            )
        self._num_concurrent = num_concurrent
        self._max_slowdown = max_slowdown
        self._interval = initial_interval
        self._min_interval = min_interval
        self._max_interval = max_interval
        self._adjust_every = adjust_every
        self._max_step_ratio = max_step_ratio
        self._iteration_time = Ewma(alpha)
        self._tw = Ewma(alpha)
        self._iterations_seen = 0
        self._since_checkpoint = 0
        self._since_adjustment = 0
        #: History of (iteration, interval) adjustment decisions.
        self.history: List[tuple] = [(0, initial_interval)]

    # ------------------------------------------------------------------
    # trainer-facing hooks

    @property
    def interval(self) -> int:
        """The currently active checkpoint interval f."""
        return self._interval

    def observe_iteration(self, seconds: float) -> None:
        """Report one training iteration's duration."""
        if seconds <= 0:
            raise ConfigError(f"iteration time must be positive, got {seconds}")
        self._iteration_time.update(seconds)
        self._iterations_seen += 1
        self._since_checkpoint += 1
        self._since_adjustment += 1
        if self._since_adjustment >= self._adjust_every:
            self._maybe_adjust()
            self._since_adjustment = 0

    def observe_checkpoint(self, tw_seconds: float) -> None:
        """Report a completed checkpoint's begin→durable time Tw."""
        if tw_seconds < 0:
            raise ConfigError(f"Tw must be >= 0, got {tw_seconds}")
        self._tw.update(tw_seconds)

    def should_checkpoint(self) -> bool:
        """True when the current interval has elapsed; resets the phase."""
        if self._since_checkpoint >= self._interval:
            self._since_checkpoint = 0
            return True
        return False

    # ------------------------------------------------------------------
    # the adaptation step

    def _maybe_adjust(self) -> None:
        t = self._iteration_time.value
        tw = self._tw.value
        if t is None or tw is None:
            return
        target = min_checkpoint_interval(
            tw, self._num_concurrent, self._max_slowdown, t
        )
        damped = self._damp(target)
        clamped = max(self._min_interval, min(self._max_interval, damped))
        if clamped != self._interval:
            self._interval = clamped
            self.history.append((self._iterations_seen, clamped))

    def _damp(self, target: int) -> int:
        upper = math.ceil(self._interval * self._max_step_ratio)
        lower = max(1, math.floor(self._interval / self._max_step_ratio))
        return max(lower, min(upper, target))
