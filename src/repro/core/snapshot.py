"""Snapshot sources: where checkpoint bytes come from.

The orchestrator is agnostic to whether the training state lives in
simulated GPU memory or plain host bytes; it snapshots through the
:class:`SnapshotSource` protocol.  A snapshot must be *consistent*: the
bytes captured correspond to one logical version of the state, so the
trainer must not run its weight update while a capture is in progress —
this is exactly the T→U stall of Figure 6, and the orchestrator exposes a
``wait_for_snapshots`` hook the trainer calls before each update.

Capture is chunked: each chunk is read from the source into a pinned DRAM
buffer (through the simulated GPU's copy engines when the state lives on
a GPU), then handed to the persist stage while the next chunk is being
captured (Figure 7's pipelining).
"""

from __future__ import annotations

from typing import Protocol

from repro.storage.device import Buffer, as_view
from repro.storage.dram import PinnedBuffer
from repro.storage.gpu import GPUBuffer, SimulatedGPU


class SnapshotSource(Protocol):
    """Anything the orchestrator can checkpoint."""

    def snapshot_size(self) -> int:
        """Total bytes one checkpoint of this source occupies."""
        ...

    def capture_chunk(self, offset: int, length: int, dest: PinnedBuffer) -> None:
        """Copy ``[offset, offset+length)`` of the state into ``dest``.

        Called only between updates (the consistency contract), so the
        underlying state is stable for the duration of the call.
        """
        ...


class BytesSource:
    """Snapshot source over host memory — any buffer-protocol object.

    The payload is held as a flat :class:`memoryview`, so chunk captures
    slice it without materializing intermediate ``bytes`` — the staging
    copy into the pinned buffer is the only copy on this path.  The caller
    owns the underlying memory and must keep it stable while a capture is
    in flight (the same consistency contract every source carries).
    """

    def __init__(self, data: Buffer) -> None:
        self._data = as_view(data)

    def replace(self, data: Buffer) -> None:
        """Swap in a new state version (between updates)."""
        self._data = as_view(data)

    def snapshot_size(self) -> int:
        return len(self._data)

    def capture_chunk(self, offset: int, length: int, dest: PinnedBuffer) -> None:
        dest.fill(self._data[offset : offset + length])


class GPUSource:
    """Snapshot source over a simulated GPU buffer, via its copy engines.

    Each chunk capture is a DMA through the GPU's copy engine pool, so
    captures contend for engines with other in-flight checkpoints exactly
    as ``cudaMemcpyAsync`` streams would.
    """

    def __init__(self, gpu: SimulatedGPU, buffer: GPUBuffer) -> None:
        self._gpu = gpu
        self._buffer = buffer

    @property
    def buffer(self) -> GPUBuffer:
        """The device allocation being checkpointed."""
        return self._buffer

    def snapshot_size(self) -> int:
        return self._buffer.nbytes

    def capture_chunk(self, offset: int, length: int, dest: PinnedBuffer) -> None:
        self._gpu.copy_to_host(self._buffer, offset, length, dest)
