"""PCcheck configuration — the parameters of Table 2.

Three groups of quantities drive the system:

* **Configuration parameters** the user (or the auto-tuner of §3.4) picks:
  the number of concurrent checkpoints ``N``, parallel writer threads per
  checkpoint ``p``, DRAM buffer (chunk) size ``b``, number of DRAM chunks
  ``c``, and the checkpoint interval ``f`` in iterations.
* **System/model parameters** measured from the platform: GPU–CPU PCIe
  bandwidth ``T_G``, storage bandwidth ``T_S``, iteration time ``t``, and
  checkpoint size ``m``.
* **User constraints**: total DRAM budget ``M``, storage budget ``S``,
  acceptable slowdown ``q ≥ 1``, and total iterations ``A``.

:class:`PCcheckConfig` validates the constraints the paper states
(``M ≤ S``, ``N ≤ S/m − 1``, ``c = M/b``) and computes the Table 1 memory
footprint.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import ConfigError


def validate_choice(what: str, value: str, choices) -> str:
    """Reject ``value`` unless it is one of ``choices``.

    The ONE place enumerated-knob validation errors are worded, so the
    CLI, :func:`repro.open_checkpointer`, the engine pool, and the
    service all produce the same message shape::

        unknown backend 'tape' (expected one of: faults, pmem, ssd)

    Returns ``value`` unchanged so call sites can validate inline.
    """
    if value not in choices:
        raise ConfigError(
            f"unknown {what} {value!r} "
            f"(expected one of: {', '.join(sorted(choices))})"
        )
    return value


@dataclass(frozen=True)
class UserConstraints:
    """User-facing resource and overhead limits (Table 2, right column)."""

    dram_budget: int  # M, bytes of DRAM usable for staging
    storage_budget: int  # S, bytes of persistent storage for checkpoints
    max_slowdown: float = 1.05  # q >= 1
    total_iterations: int = 1_000_000  # A

    def __post_init__(self) -> None:
        if self.dram_budget <= 0:
            raise ConfigError(f"DRAM budget must be positive, got {self.dram_budget}")
        if self.storage_budget < self.dram_budget:
            raise ConfigError(
                f"the paper requires M <= S; got M={self.dram_budget}, "
                f"S={self.storage_budget}"
            )
        if self.max_slowdown < 1.0:
            raise ConfigError(f"slowdown q must be >= 1, got {self.max_slowdown}")
        if self.total_iterations <= 0:
            raise ConfigError("total iterations A must be positive")


@dataclass(frozen=True)
class SystemParameters:
    """Measured platform and workload quantities (Table 2, middle column)."""

    pcie_bandwidth: float  # T_G, bytes/sec GPU->DRAM
    storage_bandwidth: float  # T_S, bytes/sec DRAM->storage (saturated)
    iteration_time: float  # t, seconds per training iteration
    checkpoint_size: int  # m, bytes of model + optimizer state

    def __post_init__(self) -> None:
        for label, value in (
            ("PCIe bandwidth T_G", self.pcie_bandwidth),
            ("storage bandwidth T_S", self.storage_bandwidth),
            ("iteration time t", self.iteration_time),
        ):
            if value <= 0:
                raise ConfigError(f"{label} must be positive, got {value}")
        if self.checkpoint_size <= 0:
            raise ConfigError(
                f"checkpoint size m must be positive, got {self.checkpoint_size}"
            )


@dataclass(frozen=True)
class MemoryFootprint:
    """Table 1 row: bytes consumed at each level of the hierarchy."""

    gpu: int
    dram_min: int
    dram_max: int
    storage: int

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for table rendering."""
        return {
            "gpu": self.gpu,
            "dram_min": self.dram_min,
            "dram_max": self.dram_max,
            "storage": self.storage,
        }


@dataclass(frozen=True)
class PCcheckConfig:
    """A complete, validated PCcheck configuration.

    ``chunk_size=None`` disables pipelining: each checkpoint is staged and
    persisted as a single chunk (the non-pipelined variant of Figure 6).
    """

    num_concurrent: int = 2  # N
    writer_threads: int = 3  # p
    interval: int = 10  # f, in iterations
    chunk_size: Optional[int] = None  # b, bytes; None = whole checkpoint
    num_chunks: int = 2  # c, DRAM chunks available
    constraints: Optional[UserConstraints] = field(default=None)

    def __post_init__(self) -> None:
        if self.num_concurrent < 1:
            raise ConfigError(
                f"need at least one concurrent checkpoint, got {self.num_concurrent}"
            )
        if self.writer_threads < 1:
            raise ConfigError(
                f"need at least one writer thread, got {self.writer_threads}"
            )
        if self.interval < 1:
            raise ConfigError(f"checkpoint interval must be >= 1, got {self.interval}")
        if self.chunk_size is not None and self.chunk_size <= 0:
            raise ConfigError(f"chunk size must be positive, got {self.chunk_size}")
        if self.num_chunks < 1:
            raise ConfigError(f"need at least one DRAM chunk, got {self.num_chunks}")

    @property
    def num_slots(self) -> int:
        """Storage slots required: N concurrent + 1 always-valid (Table 1)."""
        return self.num_concurrent + 1

    def validate_against(
        self, system: SystemParameters, constraints: UserConstraints
    ) -> None:
        """Check the Table 2 consistency rules for a concrete workload."""
        size = system.checkpoint_size
        max_concurrent = constraints.storage_budget // size - 1
        if self.num_concurrent > max_concurrent:
            raise ConfigError(
                f"N={self.num_concurrent} violates N <= S/m - 1 = {max_concurrent}"
            )
        dram_needed = self.dram_bytes(size)
        if dram_needed > constraints.dram_budget:
            raise ConfigError(
                f"staging needs {dram_needed} bytes of DRAM but the budget "
                f"is {constraints.dram_budget}"
            )

    def dram_bytes(self, checkpoint_size: int) -> int:
        """DRAM the staging pool occupies for a given checkpoint size."""
        chunk = self.effective_chunk_size(checkpoint_size)
        return chunk * self.num_chunks

    def effective_chunk_size(self, checkpoint_size: int) -> int:
        """Chunk size in bytes, defaulting to the full checkpoint."""
        if self.chunk_size is None:
            return checkpoint_size
        return min(self.chunk_size, checkpoint_size)

    def chunks_per_checkpoint(self, checkpoint_size: int) -> int:
        """How many chunks one checkpoint splits into."""
        chunk = self.effective_chunk_size(checkpoint_size)
        return max(1, math.ceil(checkpoint_size / chunk))

    def footprint(self, checkpoint_size: int) -> MemoryFootprint:
        """Table 1 footprint of PCcheck for a checkpoint of ``m`` bytes.

        GPU holds one copy of the state (m); DRAM staging ranges from m
        (tight pool) to 2m (the paper's default); storage holds N+1 slots.
        """
        return MemoryFootprint(
            gpu=checkpoint_size,
            dram_min=checkpoint_size,
            dram_max=min(2 * checkpoint_size, max(self.dram_bytes(checkpoint_size), checkpoint_size)),
            storage=self.num_slots * checkpoint_size,
        )


def baseline_footprint(name: str, checkpoint_size: int) -> MemoryFootprint:
    """Table 1 rows for the baselines.

    CheckFreq: m on GPU, m in DRAM, 2m on storage.  GPM: no DRAM copy,
    2m on storage.  Gemini: m plus a 32 MB staging buffer on the GPU, m in
    (remote) DRAM, no persistent storage.
    """
    m = checkpoint_size
    rows = {
        "checkfreq": MemoryFootprint(gpu=m, dram_min=m, dram_max=m, storage=2 * m),
        "gpm": MemoryFootprint(gpu=m, dram_min=0, dram_max=0, storage=2 * m),
        "gemini": MemoryFootprint(
            gpu=m + 32 * 1024 * 1024, dram_min=m, dram_max=m, storage=0
        ),
    }
    try:
        return rows[name]
    except KeyError:
        raise ConfigError(
            f"unknown baseline {name!r}; expected one of {sorted(rows)}"
        ) from None
