"""Bounded FIFO queue of free checkpoint slots.

The paper stores the addresses of reusable checkpoint slots in a lock-free
FIFO queue based on Morrison and Afek's fast concurrent queue (PPoPP'13).
That design is a circular ring indexed by two fetch-and-add "tickets" (head
and tail); each cell carries the ticket round so that slow enqueuers and
dequeuers from previous rounds cannot collide with current ones.

This module reproduces the ticket-ring structure faithfully: ``enqueue``
claims a tail ticket with fetch-and-add and publishes into cell
``ticket % capacity``; ``dequeue`` claims a head ticket and consumes the
matching cell.  Cell hand-off uses a per-cell turn counter, exactly as in
array-based lock-free ring buffers.  The atomic ticket counters come from
:mod:`repro.core.atomics`, which emulates fetch-and-add under the GIL, so
the queue's *semantics* (FIFO order, no lost or duplicated elements, no
blocking between producers and consumers that have both claimed valid
tickets) match the paper's queue.

Capacity equals the number of checkpoint slots (N+1 in the paper), so the
queue can never actually overflow: at most N+1 slot indices exist and the
slot pointed to by ``CHECK_ADDR`` is, by invariant, never enqueued.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional

from repro.core.atomics import AtomicCounter
from repro.errors import EngineError

#: Sentinel returned by :meth:`SlotQueue.dequeue` when the queue is empty,
#: mirroring the ``EMPTY`` constant in Listing 1.
EMPTY: int = -1

#: First pause between empty-queue probes in :meth:`SlotQueue.dequeue_blocking`.
#: Small enough that an uncontended engine sees negligible extra latency.
SPIN_BACKOFF_INITIAL_SECONDS: float = 1e-4

#: Ceiling for the exponential backoff: a fully occupied queue is polled at
#: least this often, bounding the worst-case wake-up delay after a slot frees.
SPIN_BACKOFF_MAX_SECONDS: float = 2e-3

#: Growth factor applied to the pause after each empty probe.
SPIN_BACKOFF_MULTIPLIER: float = 2.0


class _Cell:
    """One ring cell: a turn counter plus the stored slot index."""

    __slots__ = ("turn", "value", "lock", "nonempty", "nonfull")

    def __init__(self, turn: int) -> None:
        self.turn = turn
        self.value: Optional[int] = None
        self.lock = threading.Lock()
        self.nonempty = threading.Condition(self.lock)
        self.nonfull = threading.Condition(self.lock)


class SlotQueue:
    """Bounded multi-producer / multi-consumer FIFO of slot indices.

    The queue follows the ticket-ring construction used by Morrison–Afek
    style queues: tickets are issued by atomic fetch-and-add, and cell
    ``t % capacity`` is used on round ``t // capacity``.  A cell's ``turn``
    field is ``2 * round`` when the cell is empty and awaiting the round's
    enqueuer, and ``2 * round + 1`` when it is full and awaiting the round's
    dequeuer.

    ``dequeue`` is non-blocking and returns :data:`EMPTY` when no element
    is ready, matching Listing 1's busy-wait loop::

        while True:
            slot = queue.dequeue()
            if slot != EMPTY:
                break
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise EngineError(f"queue capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._cells: List[_Cell] = [_Cell(turn=2 * 0) for _ in range(capacity)]
        for index, cell in enumerate(self._cells):
            # Cell i is first used by ticket i (round 0): empty state.
            del index, cell
        self._head = AtomicCounter(0)
        self._tail = AtomicCounter(0)

    @property
    def capacity(self) -> int:
        """Maximum number of elements the ring can hold."""
        return self._capacity

    def __len__(self) -> int:
        """Approximate number of stored elements (racy under concurrency)."""
        return max(0, self._tail.load() - self._head.load())

    def enqueue(self, value: int) -> None:
        """Append ``value``; blocks only if a same-cell dequeue from a
        previous round has not finished (impossible when capacity bounds
        the number of live elements, as it does for checkpoint slots)."""
        if value < 0:
            raise EngineError(f"slot indices must be non-negative, got {value}")
        ticket = self._tail.fetch_add(1)
        cell = self._cells[ticket % self._capacity]
        rounds = ticket // self._capacity
        want_turn = 2 * rounds
        with cell.lock:
            while cell.turn != want_turn:
                cell.nonfull.wait()
            cell.value = value
            cell.turn = want_turn + 1
            cell.nonempty.notify_all()

    def dequeue(self) -> int:
        """Remove and return the oldest element, or :data:`EMPTY`.

        Non-blocking: if the cell the next ticket maps to is not yet
        published, no ticket is consumed and :data:`EMPTY` is returned.
        """
        while True:
            head = self._head.load()
            tail = self._tail.load()
            if head >= tail:
                return EMPTY
            cell = self._cells[head % self._capacity]
            rounds = head // self._capacity
            full_turn = 2 * rounds + 1
            with cell.lock:
                if cell.turn != full_turn:
                    # Enqueuer claimed the ticket but has not published yet.
                    return EMPTY
                # Claim the head ticket; if another dequeuer beat us, retry.
                if not self._claim_head(head):
                    continue
                value = cell.value
                cell.value = None
                cell.turn = full_turn + 1  # == 2 * (rounds + 1) for next round
                cell.nonfull.notify_all()
            assert value is not None
            return value

    def dequeue_blocking(
        self,
        timeout: Optional[float] = None,
        *,
        initial_backoff: float = SPIN_BACKOFF_INITIAL_SECONDS,
        max_backoff: float = SPIN_BACKOFF_MAX_SECONDS,
    ) -> int:
        """Spin with capped exponential backoff until an element arrives.

        Mirrors the busy-wait in Listing 1 lines 8–11 but sleeps between
        probes so the emulation does not burn a CPU.  The pause starts at
        ``initial_backoff`` and doubles (by
        :data:`SPIN_BACKOFF_MULTIPLIER`) up to ``max_backoff``, so a
        briefly-empty queue is re-probed almost immediately while a
        saturated one is polled gently.  Returns :data:`EMPTY` on timeout.
        """
        if initial_backoff <= 0 or max_backoff < initial_backoff:
            raise EngineError(
                f"invalid backoff window [{initial_backoff}, {max_backoff}]"
            )
        deadline = None if timeout is None else time.monotonic() + timeout
        delay = initial_backoff
        while True:
            value = self.dequeue()
            if value != EMPTY:
                return value
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return EMPTY
                time.sleep(min(delay, remaining))
            else:
                time.sleep(delay)
            delay = min(delay * SPIN_BACKOFF_MULTIPLIER, max_backoff)

    def _claim_head(self, expected: int) -> bool:
        """CAS-like head advance: succeed only if head is still ``expected``."""
        with self._head._lock:  # noqa: SLF001 - deliberate fused CAS on the counter
            if self._head._value != expected:
                return False
            self._head._value = expected + 1
            return True

    def drain(self) -> List[int]:
        """Remove and return all currently available elements (test helper)."""
        out: List[int] = []
        while True:
            value = self.dequeue()
            if value == EMPTY:
                return out
            out.append(value)
