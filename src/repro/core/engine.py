"""The concurrent checkpoint engine — the paper's Listing 1.

This is PCcheck's primary contribution: a checkpoint operation that never
waits for a previous checkpoint to finish persisting.  The moving parts
map one-to-one onto §4.1:

* a global :class:`~repro.core.atomics.AtomicCounter` orders checkpoints;
* a :class:`~repro.core.freelist.SlotQueue` hands out free storage slots
  (the lock-free queue of "available slots for storing checkpoints, apart
  from the latest valid checkpoint");
* a :class:`~repro.core.writer.ParallelWriter` persists each payload with
  ``p`` threads and the medium's fence discipline;
* an :class:`~repro.core.atomics.AtomicReference` is ``CHECK_ADDR``; the
  CAS retry loop of Listing 1 lines 19–34 decides which checkpoint is the
  newest committed one, returns superseded slots to the queue, and never
  lets an older checkpoint overwrite a newer one.

Invariants maintained (tested exhaustively in ``tests/``):

1. At every instant at least one fully persisted checkpoint exists once
   the first commit completed, and recovery finds the newest committed one.
2. The committed counter is monotonically non-decreasing.
3. The slot referenced by the committed record is never in the free queue.
4. Each completed ``checkpoint()`` call returns exactly one slot to the
   queue (the superseded one on success, its own on defeat), so N
   concurrent checkpoints never deadlock on N+1 slots.

The engine exposes a *ticket* API so the orchestrator can stream a
checkpoint in pipelined chunks (§3.1, Figure 7): ``begin()`` reserves the
slot and counter, ``write_chunk()`` persists consecutive pieces, and
``commit()`` runs the header write plus CAS protocol.  ``checkpoint()``
is the one-shot convenience wrapper.
"""

from __future__ import annotations

import threading
import time
import zlib
from dataclasses import dataclass
from typing import Optional

from repro.core.atomics import AtomicCounter, AtomicReference
from repro.core.freelist import EMPTY, SlotQueue
from repro.core.layout import DeviceLayout
from repro.core.meta import (
    RECORD_SIZE,
    CheckMeta,
    encode_commit_record,
    encode_slot_header,
)
from repro.core.sanitize import (
    EngineSanitizer,
    SanitizedAtomicCounter,
    SanitizedAtomicReference,
    SanitizedSlotQueue,
    sanitize_requested,
)
from repro.core.writer import FenceMode, ParallelWriter, PersistSubmission
from repro.errors import (
    CrashedDeviceError,
    EngineClosedError,
    EngineError,
    OutOfSpaceError,
    SlotWaitTimeout,
)
from repro.obs.metrics import M, MetricsRegistry
from repro.storage.device import Buffer, as_view
from repro.obs.trace import (
    NULL_TRACER,
    STATUS_ABORTED,
    STATUS_COMMITTED,
    STATUS_DANGLING,
    STATUS_SUPERSEDED,
)


@dataclass(frozen=True)
class CheckpointResult:
    """Outcome of one checkpoint operation.

    ``committed`` is True when this checkpoint won the CAS and became the
    recovery point; False when a concurrent *newer* checkpoint superseded
    it (its slot was recycled immediately — the paper's lines 29–31).
    Either way the checkpoint's data was durably written first, so a
    superseded checkpoint still cost one slot-write of bandwidth; the
    orchestrator's scheduling keeps this case rare.
    """

    counter: int
    slot: int
    committed: bool
    payload_len: int


class EngineStats:
    """Read-through view of the engine's counters in the metrics registry.

    Historically the engine kept its own ad-hoc counter object; since the
    observability layer landed, the :class:`~repro.obs.metrics
    .MetricsRegistry` is the single source of truth and this class only
    preserves the old read surface (``stats.commits``,
    ``stats.snapshot()``) for benchmarks and tests.
    """

    def __init__(self, metrics: MetricsRegistry) -> None:
        self._metrics = metrics

    @property
    def commits(self) -> int:
        return int(self._metrics.value(M.COMMITS))

    @property
    def superseded(self) -> int:
        return int(self._metrics.value(M.SUPERSEDED))

    @property
    def cas_retries(self) -> int:
        return int(self._metrics.value(M.CAS_RETRIES))

    @property
    def bytes_persisted(self) -> int:
        return int(self._metrics.value(M.BYTES_PERSISTED))

    @property
    def slot_wait_seconds(self) -> float:
        return self._metrics.value(M.SLOT_WAIT_SECONDS)

    def snapshot(self) -> dict:
        """Point-in-time copy of all counters."""
        return {
            "commits": self.commits,
            "superseded": self.superseded,
            "cas_retries": self.cas_retries,
            "bytes_persisted": self.bytes_persisted,
            "slot_wait_seconds": self.slot_wait_seconds,
        }


class CheckpointTicket:
    """An in-flight checkpoint: slot + counter reserved, chunks streaming.

    Not thread-safe by itself — one ticket belongs to one checkpoint
    session, though many tickets proceed concurrently.
    """

    def __init__(
        self, engine: "CheckpointEngine", counter: int, slot: int, step: int = 0
    ) -> None:
        self._engine = engine
        self.counter = counter
        self.slot = slot
        self.step = step
        #: Optional root span this ticket's engine-side spans parent under
        #: (set by the orchestrator so commit spans join the lifecycle tree).
        self.trace_parent = None
        self._written = 0
        self._crc = 0
        self._done = False
        #: Submissions handed to the writer pool but not yet reaped —
        #: their chunk buffers must stay stable, and :meth:`commit`
        #: settles them before the header can claim durability.
        self._unreaped: list = []
        #: First error swallowed while settling submissions during
        #: :meth:`abort` (diagnostics only — the checkpoint is already
        #: being discarded when abort runs).
        self.abort_error: Optional[BaseException] = None

    @property
    def bytes_written(self) -> int:
        """Payload bytes submitted so far (durable once reaped)."""
        return self._written

    @property
    def pending_submissions(self) -> int:
        """Chunk submissions in flight (submitted, not yet reaped)."""
        return len(self._unreaped)

    def write_chunk(self, chunk: Buffer) -> None:
        """Persist the next consecutive piece of the payload.

        Chunks may be scattered in DRAM but land at consecutive offsets in
        the slot (§3.1: "all the checkpoint's chunks are ordered and
        written to consecutive addresses on persistent storage").  Any
        C-contiguous buffer is accepted and never re-materialized as
        ``bytes`` — the writer threads slice a memoryview of it.

        Internally the chunk is *submitted* to the pool first and its CRC
        computed while the writes are in flight (``zlib.crc32`` drops the
        GIL on large buffers), then reaped — so even the blocking call
        overlaps checksum compute with device time.
        """
        self.reap(self.submit_chunk(chunk))

    def submit_chunk(self, chunk: Buffer) -> "PersistSubmission":
        """Queue the next consecutive piece and CRC it while it writes.

        The pipelined half of :meth:`write_chunk`: the chunk's shares go
        to the writer pool in one batched submission, the running payload
        CRC is folded in *while* the pool writes, and the submission
        comes back unreaped — no fence yet, durability pending.  The
        caller must keep ``chunk``'s buffer stable until it calls
        :meth:`reap` (the orchestrator holds the staging buffer of chunk
        *k−1* exactly this long, so its CRC of chunk *k* overlaps the
        persist of chunk *k−1*).  :meth:`commit` reaps anything still
        outstanding.
        """
        if self._done:
            raise EngineError("ticket already committed or aborted")
        view = as_view(chunk)
        return self._submit_views([view])

    def reap(self, submission: "PersistSubmission") -> None:
        """Settle a :meth:`submit_chunk`: one wait + one covering fence.

        Re-raises the first share failure; afterwards the chunk's buffer
        may be recycled.  Idempotent per submission.
        """
        self._unreaped = [
            pending for pending in self._unreaped if pending is not submission
        ]
        self._engine._reap_chunk(submission)

    def _submit_views(self, views) -> "PersistSubmission":
        submission = self._engine._submit_chunk_batch(self, views)
        self._unreaped.append(submission)
        crc_start = time.monotonic()
        for view in views:
            self._crc = zlib.crc32(view, self._crc)
            self._written += len(view)
        self._engine._record_overlap(submission, crc_start, time.monotonic())
        return submission

    def write_chunks(self, chunks) -> None:
        """Persist several consecutive pieces as ONE writer batch.

        The pieces land back-to-back at the slot's next offsets, exactly
        as repeated :meth:`write_chunk` calls would, but they are handed
        to the writer pool together via one batched
        :meth:`~repro.core.writer.ParallelWriter.submit` — in ``single``
        fence mode the whole batch is covered by one fence instead of
        one per piece, and the batch CRC is computed while the pool
        writes.  This is the engine-side hook the multi-tenant service's
        coalescing path uses to turn K small checkpoints into a single
        fsync.
        """
        if self._done:
            raise EngineError("ticket already committed or aborted")
        views = [as_view(chunk) for chunk in chunks]
        views = [view for view in views if len(view)]
        if not views:
            return
        self.reap(self._submit_views(views))

    def commit(self) -> CheckpointResult:
        """Finish the checkpoint: persist the header, run the CAS protocol.

        Any chunk submissions still in flight are reaped first — the
        commit record must never claim a payload whose covering fences
        have not been issued.
        """
        if self._done:
            raise EngineError("ticket already committed or aborted")
        while self._unreaped:
            self.reap(self._unreaped[0])
        self._done = True
        return self._engine._commit(self, self._crc)

    def abort(self) -> None:
        """Give the slot back without committing (e.g. snapshot failed)."""
        if self._done:
            return
        self._done = True
        # Settle in-flight submissions so no pool worker still references
        # the chunk buffers after the slot is recycled; their errors are
        # moot — the checkpoint is being thrown away — but the first one
        # stays visible on the ticket for diagnostics.
        for submission in self._unreaped:
            try:
                self._engine._reap_chunk(submission)
            except Exception as exc:
                if self.abort_error is None:
                    self.abort_error = exc
        self._unreaped = []
        self._engine._abort_ticket(self)


class CheckpointEngine:
    """Concurrent checkpoint engine over a formatted device region."""

    def __init__(
        self,
        layout: DeviceLayout,
        writer_threads: int = 3,
        fence_mode: Optional[FenceMode] = None,
        recovered: Optional[CheckMeta] = None,
        post_cas_hook=None,
        slot_custodian=None,
        sanitize: Optional[bool] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
    ) -> None:
        """``post_cas_hook(meta)`` runs after a successful CAS and the
        durable commit-record write, but *before* the superseded slot is
        recycled — the exact point where the paper's distributed protocol
        performs its rank-0 coordination round (§4.1, "Checkpointing in
        Distributed Training").  A hook that raises does NOT leak the
        superseded slot: the engine moves it into the held-slot registry
        (see :meth:`held_slots`) and re-raises after finishing the
        ticket's accounting, so the caller can later recycle it with
        :meth:`release_held_slot` / :meth:`reclaim_held_slots` once the
        group agrees the round is dead.

        ``slot_custodian`` pipelines the §4.1 hold: an object whose
        ``take_superseded(meta, slot)`` is called (after the hook) with
        the superseded slot already registered as *held*.  Returning
        True transfers custody — the custodian must eventually call
        :meth:`release_held_slot`; returning False recycles the slot
        immediately, as if no custodian were present.  This is how the
        distributed coordinator defers slot recycling until the group's
        coordination round completes without blocking the committing
        thread.

        ``sanitize`` enables the runtime invariant sanitizer
        (:mod:`repro.core.sanitize`); ``None`` defers to the
        ``REPRO_SANITIZE`` environment variable.

        ``metrics``/``tracer`` attach the observability layer; a private
        registry and the no-op tracer are used when omitted, so the
        engine is always safe to instrument unconditionally.
        """
        self._layout = layout
        self._writer = ParallelWriter(
            layout.device, num_threads=writer_threads, fence_mode=fence_mode
        )
        if sanitize is None:
            sanitize = sanitize_requested()
        initial = recovered.counter if recovered else 0
        if sanitize:
            self._sanitizer: Optional[EngineSanitizer] = EngineSanitizer(
                layout.num_slots, recovered=recovered
            )
            self._g_counter: AtomicCounter = SanitizedAtomicCounter(
                initial, self._sanitizer
            )
            self._check_addr: AtomicReference[CheckMeta] = (
                SanitizedAtomicReference(recovered, self._sanitizer)
            )
            self._free: SlotQueue = SanitizedSlotQueue(
                layout.num_slots, self._sanitizer
            )
        else:
            self._sanitizer = None
            self._g_counter = AtomicCounter(initial)
            self._check_addr = AtomicReference(recovered)
            self._free = SlotQueue(layout.num_slots)
        committed_slot = recovered.slot if recovered else None
        for slot in range(layout.num_slots):
            if slot != committed_slot:
                self._free.enqueue(slot)
        self._commit_write_lock = threading.Lock()
        self._last_written_counter = recovered.counter if recovered else 0
        self._post_cas_hook = post_cas_hook
        self._slot_custodian = slot_custodian
        # Superseded slots held across a coordination round (§4.1):
        # slot -> counter of the superseding ticket.  Held slots are in
        # neither the free queue nor any ticket; they are recycled by
        # release_held_slot / reclaim_held_slots.
        self._held_lock = threading.Lock()
        self._held_slots: dict = {}
        self._closed = False
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self.stats = EngineStats(self._metrics)
        self._metrics.set_gauge(M.FREE_SLOTS, len(self._free))

    # ------------------------------------------------------------------
    # public API

    @property
    def layout(self) -> DeviceLayout:
        """The formatted region this engine writes to."""
        return self._layout

    @property
    def max_concurrent(self) -> int:
        """N: slots minus the always-reserved committed one."""
        return self._layout.num_slots - 1

    @property
    def writer_threads(self) -> int:
        """p: writer threads per persist."""
        return self._writer.num_threads

    @property
    def sanitizing(self) -> bool:
        """True when the runtime invariant sanitizer is active."""
        return self._sanitizer is not None

    @property
    def metrics(self) -> MetricsRegistry:
        """The registry this engine reports into."""
        return self._metrics

    @property
    def tracer(self):
        """The lifecycle tracer (``NULL_TRACER`` when tracing is off)."""
        return self._tracer

    @property
    def free_slots(self) -> int:
        """Slots currently in the free queue.

        Racy while checkpoints are in flight; exact at quiescence, where
        invariant 4 demands ``num_slots - 1`` once anything committed
        (the crashsweep harness checks exactly that).
        """
        return len(self._free)

    @property
    def held_slots(self) -> tuple:
        """Superseded slots held across a coordination round (§4.1).

        Non-empty only while a distributed round is in flight (the
        custodian deferred recycling) or after a ``post_cas_hook``
        failure left a slot awaiting explicit reclaim.
        """
        with self._held_lock:
            return tuple(sorted(self._held_slots))

    def release_held_slot(self, slot: int) -> None:
        """Recycle one held superseded slot (its round completed).

        Raises :class:`~repro.errors.EngineError` when ``slot`` is not
        currently held — double releases would corrupt invariant 3.
        """
        with self._held_lock:
            if slot not in self._held_slots:
                raise EngineError(
                    f"slot {slot} is not held across a coordination round"
                )
            del self._held_slots[slot]
            remaining = len(self._held_slots)
        self._metrics.set_gauge(M.HELD_SLOTS, remaining)
        # Custody already counted as the superseding ticket's one slot
        # return (invariant 3), so this enqueue is attributed to no ticket.
        self._release_slot(slot, ticket_counter=None)

    def reclaim_held_slots(self) -> int:
        """Recycle every held slot; returns how many were reclaimed.

        Called once the group agrees the coordination round(s) the slots
        were held for can never become globally consistent (a peer died).
        The slots' payloads stay durable and recoverable until a later
        checkpoint overwrites them.
        """
        with self._held_lock:
            slots = list(self._held_slots)
            self._held_slots.clear()
        self._metrics.set_gauge(M.HELD_SLOTS, 0)
        if slots:
            self._metrics.inc(M.HELD_SLOTS_RECLAIMED, len(slots))
        for slot in slots:
            self._release_slot(slot, ticket_counter=None)
        return len(slots)

    def _hold_superseded(self, counter: int, slot: int) -> None:
        """Move a superseded slot into the held registry.

        Registering custody counts as the superseding ticket's one slot
        return (invariant 3): the later physical enqueue is attributed
        to no ticket.
        """
        with self._held_lock:
            self._held_slots[slot] = counter
            held = len(self._held_slots)
        if self._sanitizer is not None:
            self._sanitizer.on_release(counter, slot)
        self._metrics.set_gauge(M.HELD_SLOTS, held)

    def committed(self) -> Optional[CheckMeta]:
        """Metadata of the current recovery point (in-memory CHECK_ADDR)."""
        if self._sanitizer is not None:
            # Sample the shadow flag first: a commit landing between the
            # load below and the assertion must not look like a violation.
            expect_commit = self._sanitizer.ever_committed
            meta = self._check_addr.load()
            self._sanitizer.assert_recovery_point(
                meta, expect_commit=expect_commit
            )
            return meta
        return self._check_addr.load()

    def checkpoint(self, payload: Buffer, step: int = 0) -> CheckpointResult:
        """One-shot checkpoint of ``payload`` (Listing 1 end to end)."""
        self._metrics.inc(M.CHECKPOINTS_REQUESTED)
        started = time.monotonic()
        root = self._tracer.begin("checkpoint", step=step)
        ticket = self.begin(step=step)
        ticket.trace_parent = root
        root.set(counter=ticket.counter, slot=ticket.slot)
        try:
            with self._tracer.span("persist", parent=root):
                ticket.write_chunk(payload)
        except CrashedDeviceError:
            # Power loss leaves the ticket dangling — the slot is
            # reclaimed only by post-restart recovery, as on hardware.
            self._metrics.inc(M.DANGLING)
            self._tracer.end(root, status=STATUS_DANGLING)
            raise
        except BaseException:
            # Validation failures (OutOfSpaceError fires before any
            # device mutation) and other local errors must recycle the
            # slot, or each failed call permanently eats one of the N+1
            # slots (invariant 4).  Recycling is safe even after partial
            # payload writes: without a slot header the data can never
            # validate.
            ticket.abort()
            self._tracer.end(root, status=STATUS_ABORTED)
            raise
        try:
            result = ticket.commit()
        except CrashedDeviceError:
            self._metrics.inc(M.DANGLING)
            self._tracer.end(root, status=STATUS_DANGLING)
            raise
        status = STATUS_COMMITTED if result.committed else STATUS_SUPERSEDED
        self._tracer.end(root, status=status)
        self._metrics.observe(
            M.CHECKPOINT_SECONDS, time.monotonic() - started
        )
        return result

    def begin(
        self, step: int = 0, timeout: Optional[float] = None
    ) -> CheckpointTicket:
        """Reserve a counter and a free slot for a streaming checkpoint.

        Lines 2–11 of Listing 1: sample the committed checkpoint is done
        inside :meth:`_commit` (the CAS needs a fresh expected value per
        retry); here we draw the counter and busy-wait on the free queue.
        Blocks while all slots are held by in-flight checkpoints; with a
        ``timeout``, raises :class:`~repro.errors.SlotWaitTimeout` once it
        expires.
        """
        self._check_alive()
        counter = self._g_counter.add_fetch(1)
        start = time.monotonic()
        slot = self._free.dequeue_blocking(timeout)
        waited = time.monotonic() - start
        self._metrics.inc(M.SLOT_WAIT_SECONDS, waited)
        self._metrics.set_gauge(M.FREE_SLOTS, len(self._free))
        if slot == EMPTY:
            window = "" if timeout is None else f" within {timeout:g} seconds"
            raise SlotWaitTimeout(
                f"no free checkpoint slot{window} "
                f"(all {self.max_concurrent} concurrent checkpoints busy)"
            )
        if self._sanitizer is not None:
            self._sanitizer.on_begin(counter, slot)
        return CheckpointTicket(self, counter, slot, step=step)

    def close(self) -> None:
        """Refuse further checkpoints (in-flight tickets may still finish).

        The pooled writer threads are shut down; a ticket still persisting
        after this point falls back to inline writes with identical fence
        semantics, so late ``write_chunk``/``commit`` calls keep working.
        """
        self._closed = True
        self._writer.close()

    def __enter__(self) -> "CheckpointEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # internal protocol steps

    def _check_alive(self) -> None:
        if self._closed:
            raise EngineClosedError("checkpoint engine is closed")

    def _submit_chunk_batch(
        self, ticket: CheckpointTicket, views
    ) -> PersistSubmission:
        """Queue consecutive pieces to the pool as ONE batched submission.

        Capacity is validated for the whole batch up front — either every
        piece fits the slot or nothing is queued — so a failed batch
        aborts as cleanly as a failed single chunk.  Nothing is durable
        (and write errors are not observable) until :meth:`_reap_chunk`.
        """
        total = sum(len(view) for view in views)
        capacity = self._layout.payload_capacity
        if ticket.bytes_written + total > capacity:
            raise OutOfSpaceError(
                f"batched checkpoint of >= {ticket.bytes_written + total} "
                f"bytes exceeds slot payload capacity {capacity}"
            )
        offset = self._layout.payload_offset(ticket.slot) + ticket.bytes_written
        pieces = []
        for view in views:
            pieces.append((offset, view))
            offset += len(view)
        return self._writer.submit(pieces)

    def _reap_chunk(self, submission: PersistSubmission) -> None:
        """Settle a chunk submission: one wait, one covering fence."""
        if submission.reaped:
            return
        self._writer.reap(submission)
        self._metrics.inc(M.BYTES_PERSISTED, submission.total)

    def _record_overlap(
        self, submission: PersistSubmission, crc_start: float, crc_end: float
    ) -> None:
        """Credit CRC time that ran while the submission's writes were in
        flight to M.PIPELINE_OVERLAP_SECONDS.

        The overlap window is the intersection of the CRC interval with
        the submission's device-write interval: writes still pending at
        ``crc_end`` mean the whole CRC ran under them; writes that
        settled at ``done_at`` cap the credit there.  Inline submissions
        (closed pool) overlap nothing.
        """
        if submission.batch is None:
            return
        done_at = submission.done_at
        end = crc_end if done_at is None else min(crc_end, done_at)
        overlap = end - crc_start
        if overlap > 0:
            self._metrics.inc(M.PIPELINE_OVERLAP_SECONDS, overlap)

    def _commit(self, ticket: CheckpointTicket, crc: int) -> CheckpointResult:
        span = self._tracer.begin(
            "commit",
            parent=ticket.trace_parent,
            counter=ticket.counter,
            slot=ticket.slot,
        )
        start = time.monotonic()
        try:
            result = self._commit_inner(ticket, crc)
        except CrashedDeviceError:
            self._tracer.end(span, status=STATUS_DANGLING)
            raise
        self._metrics.observe(
            M.STAGE_SECONDS, time.monotonic() - start, stage="commit"
        )
        self._tracer.end(
            span,
            status=STATUS_COMMITTED if result.committed else STATUS_SUPERSEDED,
        )
        return result

    def _commit_inner(
        self, ticket: CheckpointTicket, crc: int
    ) -> CheckpointResult:
        meta = CheckMeta(
            counter=ticket.counter,
            slot=ticket.slot,
            payload_len=ticket.bytes_written,
            payload_crc=crc,
            step=ticket.step,
        )
        # Lines 16-18: persist the checkpoint's own metadata (the header
        # that "points to this data") BEFORE CHECK_ADDR may reference it.
        header_offset = self._layout.slot_offset(ticket.slot)
        self._layout.device.write(header_offset, encode_slot_header(meta))
        self._layout.device.persist(header_offset, RECORD_SIZE)

        # Lines 19-34: CAS retry loop on CHECK_ADDR.
        last_check = self._check_addr.load()
        while True:
            if last_check is not None and last_check.counter > meta.counter:
                # A newer checkpoint is already committed: ours is obsolete.
                # Line 30: barrier on CHECK_ADDR, then recycle our own slot.
                self._persist_commit_record_barrier()
                self._release_slot(ticket.slot, ticket_counter=meta.counter)
                if self._sanitizer is not None:
                    self._sanitizer.on_ticket_done(
                        meta.counter, first_commit=False
                    )
                self._metrics.inc(M.SUPERSEDED)
                return CheckpointResult(
                    counter=meta.counter,
                    slot=ticket.slot,
                    committed=False,
                    payload_len=meta.payload_len,
                )
            if self._check_addr.compare_and_swap(last_check, meta):
                # Line 22-25: success — persist CHECK_ADDR durably, then
                # hand the superseded checkpoint's slot back to the queue
                # (or a coordination custodian, §4.1).
                self._write_commit_record(meta)
                superseded = last_check.slot if last_check is not None else None
                try:
                    if self._post_cas_hook is not None:
                        self._post_cas_hook(meta)
                except BaseException:
                    # The commit IS durable but the coordination round
                    # failed mid-flight.  Hold the superseded slot for
                    # explicit reclaim instead of leaking it, finish the
                    # ticket's accounting, then surface the hook's error.
                    if superseded is not None:
                        self._hold_superseded(meta.counter, superseded)
                    if self._sanitizer is not None:
                        self._sanitizer.on_ticket_done(
                            meta.counter, first_commit=last_check is None
                        )
                    self._metrics.inc(M.COMMITS)
                    raise
                if superseded is not None:
                    self._settle_superseded(meta, superseded)
                if self._sanitizer is not None:
                    self._sanitizer.on_ticket_done(
                        meta.counter, first_commit=last_check is None
                    )
                self._metrics.inc(M.COMMITS)
                return CheckpointResult(
                    counter=meta.counter,
                    slot=ticket.slot,
                    committed=True,
                    payload_len=meta.payload_len,
                )
            # CAS failed: someone moved CHECK_ADDR. Re-sample and decide.
            self._metrics.inc(M.CAS_RETRIES)
            last_check = self._check_addr.load()

    def _settle_superseded(self, meta: CheckMeta, slot: int) -> None:
        """Recycle or hand off the superseded slot after a won CAS.

        Without a custodian the slot goes straight back to the queue
        (Listing 1 line 25).  With one, custody is registered *before*
        asking — a racing round completion may release the held slot the
        instant ``take_superseded`` returns True — and withdrawn again
        when the custodian declines.
        """
        if self._slot_custodian is None:
            self._release_slot(slot, ticket_counter=meta.counter)
            return
        self._hold_superseded(meta.counter, slot)
        deferred = False
        try:
            deferred = bool(self._slot_custodian.take_superseded(meta, slot))
        finally:
            if not deferred:
                # Declined (or the custodian raised): the provisional
                # hold is withdrawn and the slot recycled now.  A raise
                # propagates to the caller after the recycle.
                self.release_held_slot(slot)

    def _write_commit_record(self, meta: CheckMeta) -> None:
        """Durably publish ``meta`` as the commit record.

        On hardware the CAS itself is the 8-byte PMEM pointer store, so a
        later CAS necessarily lands after an earlier one.  Our emulated
        CAS and the device write are separate steps, so a lock plus a
        monotonicity check reproduces the hardware ordering: a record for
        counter ``k`` is never overwritten by one for ``k' < k``.
        """
        with self._commit_write_lock:
            if meta.counter <= self._last_written_counter:
                # A newer commit already reached the device; our in-memory
                # CAS must have been immediately superseded. Barrier only.
                # The fence MUST stay inside the lock: it stands in for
                # the hardware CAS-store ordering.
                # pclint: disable=PC001
                self._layout.device.persist(self._layout.commit_offset, RECORD_SIZE)
                return
            self._layout.device.write(
                self._layout.commit_offset, encode_commit_record(meta)
            )
            # Fence-inside-lock is the point of this function (see above).
            # pclint: disable=PC001
            self._layout.device.persist(self._layout.commit_offset, RECORD_SIZE)
            self._last_written_counter = meta.counter

    def _persist_commit_record_barrier(self) -> None:
        """Line 30's BARRIER(CHECK_ADDR): make sure the committed record
        that superseded us is durable before our slot is recycled."""
        with self._commit_write_lock:
            # Same deliberate fence-inside-lock as _write_commit_record:
            # the lock emulates the hardware CAS-store ordering.
            # pclint: disable=PC001
            self._layout.device.persist(self._layout.commit_offset, RECORD_SIZE)

    def _release_slot(
        self, slot: int, ticket_counter: Optional[int] = None
    ) -> None:
        if self._sanitizer is not None:
            self._sanitizer.on_release(ticket_counter, slot)
        self._free.enqueue(slot)
        self._metrics.set_gauge(M.FREE_SLOTS, len(self._free))

    def _abort_ticket(self, ticket: CheckpointTicket) -> None:
        self._release_slot(ticket.slot, ticket_counter=ticket.counter)
        if self._sanitizer is not None:
            self._sanitizer.on_ticket_done(ticket.counter, first_commit=False)
        self._metrics.inc(M.ABORTED)
