"""Experiment runners, tables, and CSV output for the evaluation."""

from repro.analysis.csvout import write_csv
from repro.analysis.figures import FIGURES, FigureData, generate
from repro.analysis.tables import render_bars, render_table

__all__ = [
    "FIGURES",
    "FigureData",
    "generate",
    "render_bars",
    "render_table",
    "write_csv",
]
