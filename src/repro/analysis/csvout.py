"""CSV output for experiment results (one file per table/figure)."""

from __future__ import annotations

import csv
import os
from typing import Sequence


def write_csv(path: str, columns: Sequence[str],
              rows: Sequence[Sequence[object]]) -> str:
    """Write rows to ``path``, creating parent directories; returns path."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(columns)
        writer.writerows(rows)
    return path
