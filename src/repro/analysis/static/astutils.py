"""Small AST helpers shared by every lint rule."""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def call_name(call: ast.Call) -> Optional[str]:
    """Terminal name of a call: ``time.sleep(...)`` -> ``sleep``."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def dotted_name(expr: ast.expr) -> Optional[str]:
    """Best-effort dotted path: ``self._lock`` -> ``"self._lock"``.

    Returns None for expressions that are not plain name/attribute
    chains (calls, subscripts, ...).
    """
    parts = []
    node: ast.expr = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def terminal_name(expr: ast.expr) -> Optional[str]:
    """Last segment of a name/attribute chain, else None."""
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return None


def iter_functions(tree: ast.AST) -> Iterator[FunctionNode]:
    """Every function and method in the module, including nested ones."""
    for node in ast.walk(tree):
        if isinstance(node, FUNCTION_NODES):
            yield node


def iter_calls(node: ast.AST) -> Iterator[ast.Call]:
    """Every Call node in ``node``'s subtree (including ``node``)."""
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            yield child


def contains_call_named(node: ast.AST, name: str) -> bool:
    """Does the subtree contain a call whose terminal name is ``name``?"""
    return any(call_name(call) == name for call in iter_calls(node))


def mentions_name(node: ast.AST, name: str) -> bool:
    """Does the subtree reference ``name`` as a Name or attribute?"""
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and child.id == name:
            return True
        if isinstance(child, ast.Attribute) and child.attr == name:
            return True
    return False


def position(node: ast.AST) -> tuple:
    """(line, col) sort key for ordering nodes by source position."""
    return (getattr(node, "lineno", 0), getattr(node, "col_offset", 0))
