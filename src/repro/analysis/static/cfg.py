"""Per-function control-flow graphs for the whole-program rules.

Pass 1 of the project analysis lowers every function body into a small
statement-level CFG: one node per statement, edges for the possible
successors, and a virtual ``EXIT`` id for normal function return.  The
flow-aware rules (PC010 fence ordering, PC011 view escapes) then ask
path questions — "does every path from this write to the exit cross a
fence?", "can this view be read after its buffer was released?" —
instead of relying on lexical ordering the way the per-file rules do.

The graph is deliberately approximate in the places a lint-grade
analysis can afford to be:

* compound statements own only their *header* expressions (an ``if``
  node owns the test, a ``with`` node owns its items); bodies are
  separate nodes, so events are never double-counted;
* ``try`` bodies may branch to their handlers from the block entry
  (an exception before anything ran), handlers and bodies both funnel
  through the ``finally`` block when one exists;
* ``return``/``break``/``continue`` inside a ``try`` are routed through
  the innermost ``finally`` — the extra finally→after edge this shares
  with the normal path errs toward *requiring* discipline, never toward
  missing a violation;
* ``raise`` is a terminal node with no successors — crash paths are
  exempt from fence-coverage obligations (recovery owns them), which
  :func:`all_paths_reach` encodes by treating raises as vacuously true.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

#: Virtual successor id meaning "the function returns normally here".
EXIT = -1

#: Statement types whose child statement lists become separate nodes.
_COMPOUND = (
    ast.If,
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.With,
    ast.AsyncWith,
    ast.Try,
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.ClassDef,
)
if hasattr(ast, "TryStar"):  # pragma: no branch - version dependent
    _COMPOUND = _COMPOUND + (ast.TryStar,)

if hasattr(ast, "Match"):  # pragma: no branch - version dependent
    _COMPOUND = _COMPOUND + (ast.Match,)


def header_nodes(stmt: ast.stmt) -> List[ast.AST]:
    """The AST nodes a CFG node *owns* (header only for compounds)."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.target, stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return list(stmt.items)
    if hasattr(ast, "Match") and isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        # A nested definition's body does not execute here.
        return list(stmt.decorator_list)
    if _is_try(stmt):
        return []
    return [stmt]


def _is_try(stmt: ast.stmt) -> bool:
    if isinstance(stmt, ast.Try):
        return True
    return hasattr(ast, "TryStar") and isinstance(stmt, ast.TryStar)


def iter_header_exprs(stmt: ast.stmt) -> Iterator[ast.AST]:
    """Walk only the AST the node owns (see :func:`header_nodes`)."""
    for root in header_nodes(stmt):
        yield from ast.walk(root)


@dataclass
class CFG:
    """Statement-level control-flow graph of one function body."""

    statements: List[ast.stmt] = field(default_factory=list)
    succ: List[List[int]] = field(default_factory=list)
    #: Ids control can enter through (``[EXIT]`` for an empty body).
    entry: List[int] = field(default_factory=list)

    def calls_in(self, node_id: int) -> List[ast.Call]:
        """Call expressions owned by this node, in source order."""
        calls = [
            n
            for n in iter_header_exprs(self.statements[node_id])
            if isinstance(n, ast.Call)
        ]
        calls.sort(key=lambda c: (c.lineno, c.col_offset))
        return calls

    def node_of(self, target: ast.AST) -> Optional[int]:
        """The node whose owned header subtree contains ``target``."""
        for node_id, stmt in enumerate(self.statements):
            for child in iter_header_exprs(stmt):
                if child is target:
                    return node_id
        return None


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()

    def new(self, stmt: ast.stmt) -> int:
        self.cfg.statements.append(stmt)
        self.cfg.succ.append([])
        return len(self.cfg.statements) - 1

    def seq(
        self,
        body: Sequence[ast.stmt],
        after: List[int],
        loop: Optional[Tuple[List[int], List[int]]],
        fin: Optional[List[int]],
    ) -> List[int]:
        """Wire ``body`` so control continues to ``after``; returns entries."""
        entry = after
        for stmt in reversed(body):
            entry = self.stmt(stmt, entry, loop, fin)
        return entry

    def stmt(
        self,
        stmt: ast.stmt,
        after: List[int],
        loop: Optional[Tuple[List[int], List[int]]],
        fin: Optional[List[int]],
    ) -> List[int]:
        if isinstance(stmt, ast.If):
            node = self.new(stmt)
            then_entry = self.seq(stmt.body, after, loop, fin)
            else_entry = (
                self.seq(stmt.orelse, after, loop, fin) if stmt.orelse else after
            )
            self.cfg.succ[node] = _dedupe(then_entry + else_entry)
            return [node]
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            node = self.new(stmt)
            exits = (
                self.seq(stmt.orelse, after, loop, fin) if stmt.orelse else after
            )
            body_entry = self.seq(stmt.body, [node], ([node], after), fin)
            targets = list(body_entry)
            if not _loops_forever(stmt):
                targets += exits
            self.cfg.succ[node] = _dedupe(targets)
            return [node]
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            node = self.new(stmt)
            self.cfg.succ[node] = self.seq(stmt.body, after, loop, fin)
            return [node]
        if _is_try(stmt):
            return self._try(stmt, after, loop, fin)
        if hasattr(ast, "Match") and isinstance(stmt, ast.Match):
            node = self.new(stmt)
            entries: List[int] = []
            exhaustive = any(
                isinstance(case.pattern, ast.MatchAs) and case.pattern.pattern is None
                for case in stmt.cases
            )
            for case in stmt.cases:
                entries += self.seq(case.body, after, loop, fin)
            if not exhaustive:
                entries += after
            self.cfg.succ[node] = _dedupe(entries)
            return [node]
        if isinstance(stmt, ast.Return):
            node = self.new(stmt)
            self.cfg.succ[node] = list(fin) if fin else [EXIT]
            return [node]
        if isinstance(stmt, ast.Raise):
            node = self.new(stmt)
            # Terminal: exception propagation is recovery's problem.
            self.cfg.succ[node] = []
            return [node]
        if isinstance(stmt, ast.Continue):
            node = self.new(stmt)
            if fin:
                self.cfg.succ[node] = list(fin)
            else:
                self.cfg.succ[node] = list(loop[0]) if loop else [EXIT]
            return [node]
        if isinstance(stmt, ast.Break):
            node = self.new(stmt)
            if fin:
                self.cfg.succ[node] = list(fin)
            else:
                self.cfg.succ[node] = list(loop[1]) if loop else [EXIT]
            return [node]
        node = self.new(stmt)
        self.cfg.succ[node] = list(after)
        return [node]

    def _try(
        self,
        stmt: ast.stmt,
        after: List[int],
        loop: Optional[Tuple[List[int], List[int]]],
        fin: Optional[List[int]],
    ) -> List[int]:
        if stmt.finalbody:
            fin_entry = self.seq(stmt.finalbody, after, loop, fin)
            inner_fin: Optional[List[int]] = fin_entry
            after_inner = fin_entry
        else:
            inner_fin = fin
            after_inner = after
        handler_entries: List[int] = []
        for handler in stmt.handlers:
            handler_entries += self.seq(
                handler.body, after_inner, loop, inner_fin
            )
        orelse_entry = (
            self.seq(stmt.orelse, after_inner, loop, inner_fin)
            if stmt.orelse
            else after_inner
        )
        body_entry = self.seq(stmt.body, orelse_entry, loop, inner_fin)
        # An exception may fire before the first body statement completes,
        # so handlers are alternative entries of the whole construct.
        return _dedupe(body_entry + handler_entries)


def _loops_forever(stmt: ast.stmt) -> bool:
    return (
        isinstance(stmt, ast.While)
        and isinstance(stmt.test, ast.Constant)
        and bool(stmt.test.value)
    )


def _dedupe(ids: List[int]) -> List[int]:
    seen: Dict[int, None] = {}
    for node_id in ids:
        seen.setdefault(node_id)
    return list(seen)


def build_cfg(func: ast.AST) -> CFG:
    """CFG over ``func``'s immediate body (nested defs stay opaque)."""
    builder = _Builder()
    body = getattr(func, "body", [])
    entry = builder.seq(body, [EXIT], loop=None, fin=None)
    builder.cfg.entry = entry
    return builder.cfg


def all_paths_reach(
    cfg: CFG,
    satisfies: Callable[[int], bool],
    start: Sequence[int],
) -> bool:
    """Does every path from ``start`` hit a satisfying node before EXIT?

    A node satisfies by its own events (``satisfies(id)``); ``raise``
    nodes are vacuously satisfied (the exception path carries no
    obligation); a direct edge to ``EXIT`` from an unsatisfied node is a
    counterexample.  Computed as a greatest fixed point so loops that
    never exit do not produce counterexamples.
    """
    n = len(cfg.statements)
    good = [True] * n

    def settled(node_id: int) -> bool:
        if satisfies(node_id):
            return True
        stmt = cfg.statements[node_id]
        if isinstance(stmt, ast.Raise):
            return True
        succ = cfg.succ[node_id]
        if not succ:
            # Dead end that is not a raise (e.g. trailing loop body):
            # no path escapes, so no counterexample either.
            return True
        return all(s != EXIT and good[s] for s in succ)

    changed = True
    while changed:
        changed = False
        for node_id in range(n):
            if good[node_id] and not settled(node_id):
                good[node_id] = False
                changed = True
    if EXIT in start:
        return False
    return all(good[s] for s in start)


def paths_from(
    cfg: CFG, start: Sequence[int], stop: Callable[[int], bool]
) -> Iterator[int]:
    """Every node reachable from ``start`` without crossing a stop node.

    ``stop`` is evaluated on each reached node *before* yielding it —
    a stopping node is neither yielded nor expanded.  Start nodes are
    included in the walk.
    """
    seen = set()
    stack = [s for s in start if s != EXIT]
    while stack:
        node_id = stack.pop()
        if node_id in seen or node_id == EXIT:
            continue
        seen.add(node_id)
        if stop(node_id):
            continue
        yield node_id
        stack.extend(s for s in cfg.succ[node_id] if s != EXIT)
