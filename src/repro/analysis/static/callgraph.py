"""Project-wide call graph with method-resolution heuristics.

Built over the :class:`~repro.analysis.static.projectindex.ProjectIndex`
symbol table.  A call is resolved in confidence order:

1. **Direct name** — a function in the same module, an import of a
   project function, or a project class constructor (→ ``__init__``).
2. **``self.m(...)`` / ``cls.m(...)``** — method lookup on the
   enclosing class and its project-local bases.
3. **Typed receiver** — the receiver's class inferred from parameter
   annotations, local ``x = ClassName(...)`` assignments, or
   ``self.attr`` types recorded during pass 1; then method lookup.
4. **Unique global name** — if exactly one project function bears the
   called name *and* the name is distinctive (not ``write``/``get``/
   ``release``-style vocabulary every library shares), link it and
   mark the edge heuristic.

The graph is deliberately an over-approximation in (4) and exact
enough in (1)–(3) for the lock-order and fence rules to follow calls
across ``engine.py`` ↔ ``distributed.py`` module boundaries.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set

from repro.analysis.static.projectindex import FunctionInfo, ProjectIndex

#: Method names too generic for the unique-global-name fallback —
#: resolving ``handle.write`` to a project ``Device.write`` by name
#: alone would wire the graph to every file object in the tree.
COMMON_NAMES: Set[str] = {
    "write", "read", "open", "close", "get", "put", "set", "add",
    "run", "start", "stop", "join", "wait", "notify", "notify_all",
    "append", "extend", "clear", "pop", "popleft", "update", "copy",
    "format", "flush", "send", "recv", "acquire", "release", "submit",
    "result", "sort", "index", "count", "items", "keys", "values",
    "encode", "decode", "strip", "split", "load", "store", "next",
    "name", "exists", "mkdir", "exit", "persist", "view", "fill",
}


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge, anchored at the call expression."""

    caller: str  # caller qualname
    callee: str  # callee qualname
    path: str  # caller's file
    lineno: int
    col: int
    heuristic: bool  # resolved by the unique-name fallback
    #: The call expression itself, so flow rules can locate it in the
    #: caller's CFG without re-searching by position.
    call: object = field(default=None, repr=False, compare=False)


def own_nodes(func_node: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's body without descending into nested defs."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func_node))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


class CallGraph:
    """Caller/callee edges over every indexed function."""

    def __init__(self, index: ProjectIndex) -> None:
        self._index = index
        self.edges: List[CallSite] = []
        self._callees: Dict[str, List[CallSite]] = {}
        self._callers: Dict[str, List[CallSite]] = {}
        for finfo in index.functions.values():
            env = index.local_types(finfo)
            for node in own_nodes(finfo.node):
                if not isinstance(node, ast.Call):
                    continue
                for callee, heuristic in self.resolve(finfo, node, env):
                    site = CallSite(
                        caller=finfo.qualname,
                        callee=callee,
                        path=finfo.path,
                        lineno=node.lineno,
                        col=node.col_offset,
                        heuristic=heuristic,
                        call=node,
                    )
                    self.edges.append(site)
                    self._callees.setdefault(finfo.qualname, []).append(site)
                    self._callers.setdefault(callee, []).append(site)

    # ------------------------------------------------------------------

    def callees_of(self, qualname: str) -> List[CallSite]:
        return self._callees.get(qualname, [])

    def callers_of(self, qualname: str) -> List[CallSite]:
        return self._callers.get(qualname, [])

    def function(self, qualname: str) -> Optional[FunctionInfo]:
        return self._index.functions.get(qualname)

    # ------------------------------------------------------------------
    # resolution

    def resolve(
        self,
        caller: FunctionInfo,
        call: ast.Call,
        env: Optional[Dict[str, str]] = None,
    ) -> List:
        """(callee qualname, heuristic?) candidates for one call."""
        index = self._index
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            own = index.functions.get(f"{caller.module}.{name}")
            if own is not None:
                return [(own.qualname, False)]
            cls = index.resolve_class(name, caller.module)
            if cls is not None:
                ctor = index.method_on(cls, "__init__")
                return [(ctor.qualname, False)] if ctor is not None else []
            imported = index._imports.get(caller.module, {}).get(name)
            if imported is not None:
                resolved = self._resolve_dotted(imported)
                if resolved is not None:
                    return [(resolved, False)]
            return self._fallback(name)
        if isinstance(func, ast.Attribute):
            name = func.attr
            owner = index.infer_type(func.value, caller, env)
            if owner is not None:
                method = index.method_on(owner, name)
                if method is not None:
                    return [(method.qualname, False)]
                # Known receiver type without such a method: stdlib /
                # duck-typed — do not guess globally.
                return []
            return self._fallback(name)
        return []

    def _resolve_dotted(self, dotted: str) -> Optional[str]:
        """``repro.core.writer.persist_scattered`` → function qualname."""
        index = self._index
        head, _, name = dotted.rpartition(".")
        if not head:
            return None
        module = index.module_for(head)
        if module is None:
            return None
        finfo = index.functions.get(f"{module}.{name}")
        return finfo.qualname if finfo is not None else None

    def _fallback(self, name: str) -> List:
        if name in COMMON_NAMES or name.startswith("__"):
            return []
        hits = self._index.functions_named(name)
        if len(hits) == 1:
            return [(hits[0].qualname, True)]
        return []


def get_callgraph(index: ProjectIndex) -> CallGraph:
    """The call graph for ``index``, built once per refresh generation.

    Cached in :attr:`ProjectIndex.derived`, which the index clears on
    any record change and drops when pickling.
    """
    graph = index.derived.get("callgraph")
    if not isinstance(graph, CallGraph):
        graph = CallGraph(index)
        index.derived["callgraph"] = graph
    return graph
