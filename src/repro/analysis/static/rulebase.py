"""Rule framework: file context, rule base class, and the registry."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import ClassVar, Dict, Iterable, List, Type

from repro.analysis.static.diagnostics import Diagnostic, Severity
from repro.errors import ConfigError


@dataclass
class FileContext:
    """Everything a rule needs to analyse one source file.

    ``project_mode`` tells a rule that the whole-program pass is also
    running: PC004 uses it to defer its "commit write must be followed
    by a fence in this function" half to the interprocedural PC010,
    which understands fences placed in callers.
    """

    path: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    project_mode: bool = False

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()


class Rule:
    """Base class for one lint rule (PC001, PC002, ...).

    Subclasses set ``rule_id`` and ``title`` and implement
    :meth:`check`, yielding diagnostics anchored to AST nodes via
    :meth:`report`.  Registration happens through :func:`register`.
    """

    rule_id: ClassVar[str] = ""
    title: ClassVar[str] = ""

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        raise NotImplementedError

    def report(
        self,
        ctx: FileContext,
        node: ast.AST,
        message: str,
        severity: Severity = Severity.ERROR,
    ) -> Diagnostic:
        """Build a diagnostic pointing at ``node``."""
        return Diagnostic(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.rule_id,
            message=message,
            severity=severity,
        )


class ProjectRule(Rule):
    """Base class for whole-program rules (PC009, PC010, ...).

    Project rules run once per lint invocation against the shared
    :class:`~repro.analysis.static.projectindex.ProjectIndex` instead
    of once per file; :meth:`check` is a no-op so a project rule mixed
    into a per-file run contributes nothing.
    """

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        return []

    def check_project(self, index) -> Iterable[Diagnostic]:
        """Yield findings over the whole indexed project."""
        raise NotImplementedError

    def report_at(
        self,
        path: str,
        line: int,
        col: int,
        message: str,
        severity: Severity = Severity.ERROR,
    ) -> Diagnostic:
        """Build a diagnostic anchored at an explicit position."""
        return Diagnostic(
            path=path,
            line=line,
            col=col,
            rule_id=self.rule_id,
            message=message,
            severity=severity,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise ConfigError(f"rule {cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY:
        raise ConfigError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, ordered by id."""
    # Importing the rules package populates the registry on first use.
    import repro.analysis.static.rules  # noqa: F401

    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def all_file_rules() -> List[Rule]:
    """Fresh instances of the per-file rules only."""
    return [r for r in all_rules() if not isinstance(r, ProjectRule)]


def all_project_rules() -> List[ProjectRule]:
    """Fresh instances of the whole-program rules only."""
    return [r for r in all_rules() if isinstance(r, ProjectRule)]


def rule_ids() -> List[str]:
    """Sorted ids of every registered rule."""
    import repro.analysis.static.rules  # noqa: F401

    return sorted(_REGISTRY)
