"""Drive the lint rules over files and directories; CLI entry point.

Two execution modes share this module:

* **single-file** (:func:`lint_source`, or ``--no-project``) — the
  original per-file rules PC001–PC008, no cross-file knowledge;
* **project** (the default for :func:`lint_paths`) — pass 1 builds the
  shared :class:`~repro.analysis.static.projectindex.ProjectIndex`
  (incremental: unchanged files are not re-parsed, and ``--cache FILE``
  persists the index across invocations), pass 2 replays the cached
  per-file findings and runs the whole-program rules PC009–PC011 on
  top.

Exit codes (also documented in ``--help``):

* ``0`` — clean: no findings (after baseline subtraction, if any);
* ``1`` — findings were reported;
* ``2`` — usage error: unknown rule id, missing path, bad baseline.

Usage errors go to ``error_stream`` (default ``sys.stderr``) so the
report on stdout stays machine-parseable for the JSON/SARIF formats.
"""

from __future__ import annotations

import argparse
import ast
import os
import pickle
import sys
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.static.baseline import (
    apply_baseline,
    load_baseline,
    save_baseline,
)
from repro.analysis.static.diagnostics import (
    Diagnostic,
    Severity,
    SYNTAX_RULE_ID,
)
from repro.analysis.static.projectindex import CACHE_VERSION, ProjectIndex
from repro.analysis.static.reporters import REPORTERS
from repro.analysis.static.rulebase import (
    FileContext,
    Rule,
    all_project_rules,
    all_rules,
    rule_ids,
)
from repro.analysis.static.suppress import Directive, SuppressionIndex

_SKIP_DIRS = {"__pycache__", ".git", ".pytest_cache", "build", "dist"}


def iter_python_files(paths: Sequence[str]) -> Iterable[str]:
    """Every ``.py`` file under ``paths`` (files pass through as-is)."""
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(d for d in dirs if d not in _SKIP_DIRS)
            for name in sorted(files):
                if name.endswith(".py"):
                    yield os.path.join(root, name)


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[List[Rule]] = None,
    select: Optional[Set[str]] = None,
) -> List[Diagnostic]:
    """Run the rule set over one in-memory source blob (single-file mode)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Diagnostic(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                rule_id=SYNTAX_RULE_ID,
                message=f"syntax error: {exc.msg}",
                severity=Severity.ERROR,
            )
        ]
    suppressions = SuppressionIndex.from_source(source)
    if suppressions.skip_file:
        return []
    ctx = FileContext(path=path, source=source, tree=tree)
    active = rules if rules is not None else all_rules()
    found: List[Diagnostic] = []
    for rule in active:
        if select and rule.rule_id not in select:
            continue
        found.extend(rule.check(ctx))
    return sorted(d for d in set(found) if not suppressions.is_suppressed(d))


def lint_paths(
    paths: Sequence[str],
    select: Optional[Set[str]] = None,
    index: Optional[ProjectIndex] = None,
    project: bool = True,
) -> Tuple[List[Diagnostic], int]:
    """Lint every python file under ``paths``.

    Returns (diagnostics, files_checked).  Unreadable files surface as
    PC000 diagnostics rather than aborting the run.

    In project mode (the default) pass 1 refreshes ``index`` — passing
    the same index again re-parses only files whose content hash
    changed — and pass 2 runs the whole-program rules.  Project
    findings are suppressed at their anchor line via the same
    ``# pclint: disable=`` machinery as per-file findings.
    """
    if not project:
        return _lint_paths_flat(paths, select)
    if index is None:
        index = ProjectIndex()
    covered = index.refresh(paths)
    diagnostics: List[Diagnostic] = []
    files_checked = 0
    for path in covered:
        record = index.records.get(path)
        if record is None:
            continue
        if record.readable:
            files_checked += 1
        record.suppressions.reset_project_uses()
        for diagnostic in record.file_diagnostics:
            if _selected(diagnostic, select):
                diagnostics.append(diagnostic)
    for rule in all_project_rules():
        if select and rule.rule_id not in select:
            continue
        for diagnostic in rule.check_project(index):
            record = index.record_for(diagnostic.path)
            if record is not None and (
                record.suppressions.skip_file
                or record.suppressions.is_suppressed(diagnostic, project=True)
            ):
                continue
            if _selected(diagnostic, select):
                diagnostics.append(diagnostic)
    return sorted(set(diagnostics)), files_checked


def _selected(diagnostic: Diagnostic, select: Optional[Set[str]]) -> bool:
    # Syntax/read failures are reported regardless of --select.
    if diagnostic.rule_id == SYNTAX_RULE_ID:
        return True
    return not select or diagnostic.rule_id in select


def _lint_paths_flat(
    paths: Sequence[str], select: Optional[Set[str]]
) -> Tuple[List[Diagnostic], int]:
    rules = all_rules()
    diagnostics: List[Diagnostic] = []
    files_checked = 0
    for path in iter_python_files(paths):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except (OSError, UnicodeDecodeError) as exc:
            diagnostics.append(
                Diagnostic(
                    path=path,
                    line=1,
                    col=1,
                    rule_id=SYNTAX_RULE_ID,
                    message=f"cannot read file: {exc}",
                )
            )
            continue
        files_checked += 1
        diagnostics.extend(
            lint_source(source, path=path, rules=rules, select=select)
        )
    return sorted(diagnostics), files_checked


def unused_suppressions(index: ProjectIndex) -> List[Tuple[str, Directive]]:
    """(path, directive) for every suppression that silenced nothing."""
    stale: List[Tuple[str, Directive]] = []
    for path in sorted(index.records):
        record = index.records[path]
        if record.suppressions.skip_file:
            continue
        for directive in record.suppressions.unused_directives():
            stale.append((path, directive))
    return stale


# ----------------------------------------------------------------------
# index cache persistence


def load_index_cache(path: str) -> ProjectIndex:
    """A pickled index from ``path``, or a fresh one when unusable."""
    try:
        with open(path, "rb") as handle:
            index = pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError):
        return ProjectIndex()
    if (
        not isinstance(index, ProjectIndex)
        or getattr(index, "cache_version", None) != CACHE_VERSION
    ):
        return ProjectIndex()
    return index


def save_index_cache(path: str, index: ProjectIndex) -> None:
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as handle:
        pickle.dump(index, handle, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, path)


# ----------------------------------------------------------------------
# CLI

_EPILOG = """\
exit codes:
  0  clean: no findings (after --baseline subtraction, if given)
  1  findings were reported
  2  usage error (unknown rule id, missing path, unreadable baseline)
"""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pccheck-lint",
        description="Concurrency-invariant linter for the PCcheck repo "
        "(per-file rules PC001-PC008, whole-program rules PC009-PC011).",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories"
    )
    parser.add_argument(
        "--format", choices=sorted(REPORTERS), default="text",
        help="report format",
    )
    parser.add_argument(
        "--select", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--no-project", action="store_true",
        help="per-file rules only; skip the whole-program pass",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="subtract known findings in FILE; only new ones count",
    )
    parser.add_argument(
        "--write-baseline", default=None, metavar="FILE",
        help="snapshot current findings to FILE and exit 0",
    )
    parser.add_argument(
        "--cache", default=None, metavar="FILE",
        help="persist the project index; warm runs re-parse only "
        "changed files",
    )
    parser.add_argument(
        "--warn-unused-suppressions", action="store_true",
        help="report pclint directives that silenced nothing",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    return parser


def run_lint(
    paths: Sequence[str],
    report_format: str = "text",
    select: Optional[str] = None,
    stream=None,
    error_stream=None,
    project: bool = True,
    baseline: Optional[str] = None,
    write_baseline: Optional[str] = None,
    cache: Optional[str] = None,
    warn_unused_suppressions: bool = False,
) -> int:
    """Shared implementation behind ``pccheck-lint`` and ``repro.cli lint``.

    Returns the documented exit code (0 clean / 1 findings / 2 usage
    error).  Usage errors are written to ``error_stream`` so stdout
    stays parseable.
    """
    stream = stream or sys.stdout
    error_stream = error_stream or sys.stderr
    selected: Optional[Set[str]] = None
    if select:
        selected = {part.strip().upper() for part in select.split(",") if part.strip()}
        unknown = selected - set(rule_ids())
        if unknown:
            print(
                f"unknown rule id(s): {', '.join(sorted(unknown))}",
                file=error_stream,
            )
            return 2
    if report_format not in REPORTERS:
        print(f"unknown format: {report_format}", file=error_stream)
        return 2
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(f"no such path: {', '.join(missing)}", file=error_stream)
        return 2
    known_findings = None
    if baseline:
        try:
            known_findings = load_baseline(baseline)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(f"cannot load baseline {baseline}: {exc}", file=error_stream)
            return 2

    index: Optional[ProjectIndex] = None
    if project:
        index = load_index_cache(cache) if cache else ProjectIndex()
    diagnostics, files_checked = lint_paths(
        paths, select=selected, index=index, project=project
    )
    if cache and index is not None:
        save_index_cache(cache, index)

    if write_baseline:
        save_baseline(write_baseline, diagnostics)
        print(
            f"baseline: wrote {len(diagnostics)} finding(s) to "
            f"{write_baseline}",
            file=error_stream,
        )
        return 0

    if known_findings is not None:
        diagnostics, matched = apply_baseline(diagnostics, known_findings)
        print(
            f"baseline: {matched} known finding(s) subtracted",
            file=error_stream,
        )

    if warn_unused_suppressions and index is not None:
        for path, directive in unused_suppressions(index):
            rules = (
                "all rules"
                if "*" in directive.rules
                else ",".join(sorted(directive.rules))
            )
            print(
                f"{path}:{directive.line}: unused suppression ({rules})",
                file=error_stream,
            )

    print(REPORTERS[report_format](diagnostics, files_checked), file=stream)
    return 1 if diagnostics else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.title}")
        return 0
    return run_lint(
        args.paths,
        report_format=args.format,
        select=args.select,
        project=not args.no_project,
        baseline=args.baseline,
        write_baseline=args.write_baseline,
        cache=args.cache,
        warn_unused_suppressions=args.warn_unused_suppressions,
    )


if __name__ == "__main__":
    sys.exit(main())
