"""Drive the lint rules over files and directories; CLI entry point."""

from __future__ import annotations

import argparse
import ast
import os
import sys
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.static.diagnostics import (
    Diagnostic,
    Severity,
    SYNTAX_RULE_ID,
)
from repro.analysis.static.reporters import REPORTERS
from repro.analysis.static.rulebase import FileContext, Rule, all_rules, rule_ids
from repro.analysis.static.suppress import SuppressionIndex

_SKIP_DIRS = {"__pycache__", ".git", ".pytest_cache", "build", "dist"}


def iter_python_files(paths: Sequence[str]) -> Iterable[str]:
    """Every ``.py`` file under ``paths`` (files pass through as-is)."""
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(d for d in dirs if d not in _SKIP_DIRS)
            for name in sorted(files):
                if name.endswith(".py"):
                    yield os.path.join(root, name)


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[List[Rule]] = None,
    select: Optional[Set[str]] = None,
) -> List[Diagnostic]:
    """Run the rule set over one in-memory source blob."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Diagnostic(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                rule_id=SYNTAX_RULE_ID,
                message=f"syntax error: {exc.msg}",
                severity=Severity.ERROR,
            )
        ]
    suppressions = SuppressionIndex.from_source(source)
    if suppressions.skip_file:
        return []
    ctx = FileContext(path=path, source=source, tree=tree)
    active = rules if rules is not None else all_rules()
    found: List[Diagnostic] = []
    for rule in active:
        if select and rule.rule_id not in select:
            continue
        found.extend(rule.check(ctx))
    return sorted(d for d in set(found) if not suppressions.is_suppressed(d))


def lint_paths(
    paths: Sequence[str],
    select: Optional[Set[str]] = None,
) -> Tuple[List[Diagnostic], int]:
    """Lint every python file under ``paths``.

    Returns (diagnostics, files_checked).  Unreadable files surface as
    PC000 diagnostics rather than aborting the run.
    """
    rules = all_rules()
    diagnostics: List[Diagnostic] = []
    files_checked = 0
    for path in iter_python_files(paths):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except (OSError, UnicodeDecodeError) as exc:
            diagnostics.append(
                Diagnostic(
                    path=path,
                    line=1,
                    col=1,
                    rule_id=SYNTAX_RULE_ID,
                    message=f"cannot read file: {exc}",
                )
            )
            continue
        files_checked += 1
        diagnostics.extend(
            lint_source(source, path=path, rules=rules, select=select)
        )
    return sorted(diagnostics), files_checked


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pccheck-lint",
        description="Concurrency-invariant linter for the PCcheck repo "
        "(rules PC001-PC008).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories"
    )
    parser.add_argument(
        "--format", choices=sorted(REPORTERS), default="text",
        help="report format",
    )
    parser.add_argument(
        "--select", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    return parser


def run_lint(
    paths: Sequence[str],
    report_format: str = "text",
    select: Optional[str] = None,
    stream=None,
) -> int:
    """Shared implementation behind ``pccheck-lint`` and ``repro.cli lint``."""
    stream = stream or sys.stdout
    selected: Optional[Set[str]] = None
    if select:
        selected = {part.strip().upper() for part in select.split(",") if part.strip()}
        unknown = selected - set(rule_ids())
        if unknown:
            print(
                f"unknown rule id(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(f"no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    diagnostics, files_checked = lint_paths(paths, select=selected)
    print(REPORTERS[report_format](diagnostics, files_checked), file=stream)
    return 1 if diagnostics else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.title}")
        return 0
    return run_lint(args.paths, report_format=args.format, select=args.select)


if __name__ == "__main__":
    sys.exit(main())
