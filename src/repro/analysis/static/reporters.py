"""Render lint diagnostics as text, JSON, or SARIF."""

from __future__ import annotations

import json
import os
from collections import Counter
from typing import List

from repro.analysis.static.diagnostics import Diagnostic, Severity


def render_text(diagnostics: List[Diagnostic], files_checked: int) -> str:
    """Human-readable ``path:line:col: RULE message`` listing + summary."""
    lines = [d.format() for d in diagnostics]
    if diagnostics:
        by_rule = Counter(d.rule_id for d in diagnostics)
        breakdown = ", ".join(
            f"{rule}: {count}" for rule, count in sorted(by_rule.items())
        )
        lines.append("")
        lines.append(
            f"{len(diagnostics)} finding(s) in {files_checked} file(s) "
            f"({breakdown})"
        )
    else:
        lines.append(f"clean: 0 findings in {files_checked} file(s)")
    return "\n".join(lines)


def render_json(diagnostics: List[Diagnostic], files_checked: int) -> str:
    """Machine-readable report for CI annotation tooling."""
    payload = {
        "files_checked": files_checked,
        "findings": [d.to_dict() for d in diagnostics],
        "counts": dict(Counter(d.rule_id for d in diagnostics)),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(diagnostics: List[Diagnostic], files_checked: int) -> str:
    """SARIF 2.1.0 report, consumable by code-scanning UIs."""
    from repro.analysis.static.rulebase import all_rules

    rules = [
        {
            "id": rule.rule_id,
            "name": type(rule).__name__,
            "shortDescription": {"text": rule.title},
        }
        for rule in all_rules()
    ]
    results = [
        {
            "ruleId": d.rule_id,
            "level": "error" if d.severity is Severity.ERROR else "warning",
            "message": {"text": d.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": d.path.replace(os.sep, "/")
                        },
                        "region": {
                            "startLine": d.line,
                            "startColumn": max(d.col, 1),
                        },
                    }
                }
            ],
        }
        for d in diagnostics
    ]
    payload = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "pccheck-lint",
                        "informationUri": (
                            "https://github.com/pccheck/pccheck"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


REPORTERS = {"text": render_text, "json": render_json, "sarif": render_sarif}
