"""Render lint diagnostics as text or JSON."""

from __future__ import annotations

import json
from collections import Counter
from typing import List

from repro.analysis.static.diagnostics import Diagnostic


def render_text(diagnostics: List[Diagnostic], files_checked: int) -> str:
    """Human-readable ``path:line:col: RULE message`` listing + summary."""
    lines = [d.format() for d in diagnostics]
    if diagnostics:
        by_rule = Counter(d.rule_id for d in diagnostics)
        breakdown = ", ".join(
            f"{rule}: {count}" for rule, count in sorted(by_rule.items())
        )
        lines.append("")
        lines.append(
            f"{len(diagnostics)} finding(s) in {files_checked} file(s) "
            f"({breakdown})"
        )
    else:
        lines.append(f"clean: 0 findings in {files_checked} file(s)")
    return "\n".join(lines)


def render_json(diagnostics: List[Diagnostic], files_checked: int) -> str:
    """Machine-readable report for CI annotation tooling."""
    payload = {
        "files_checked": files_checked,
        "findings": [d.to_dict() for d in diagnostics],
        "counts": dict(Counter(d.rule_id for d in diagnostics)),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


REPORTERS = {"text": render_text, "json": render_json}
