"""pccheck-lint: a concurrency-invariant static analyzer for this repo.

The checkpoint engine's correctness argument (Listing 1, §4.1) rests on
discipline that ordinary tests cannot guard: no blocking work while a
lock is held, lock-protected state never mutated outside its lock,
every ``begin()`` ticket resolved by ``commit()``/``abort()``, commit
records fenced before they can be trusted, engine errors never
swallowed, and no magic-number backoffs.  ``pccheck-lint`` encodes each
of those as an AST rule (PC001–PC008) so a future PR that silently
regresses lock or fence discipline fails CI instead of failing a
recovery two weeks later.

On top of the per-file rules, the default *project mode* parses the
whole tree once into a shared :class:`ProjectIndex` (symbol table,
call graph, per-function CFGs) and runs three whole-program rules:
PC009 lock-order cycle detection, PC010 interprocedural fence
coverage for commit-record writes (understands ``persist_many``
single-fence batches), and PC011 zero-copy view escape analysis.
Project runs are incremental (content-hash cache, ``--cache FILE``),
support a checked-in finding baseline (``--baseline`` /
``--write-baseline``), and can emit SARIF for code-scanning UIs.

Entry points::

    python -m repro.cli lint src/          # via the main CLI
    pccheck-lint src/                      # console script
    make lint

Diagnostics can be silenced per line with ``# pclint: disable=PC001``
(or ``# pclint: disable`` for all rules) on the offending line or on a
standalone comment line directly above it; a whole file opts out with
``# pclint: skip-file``.
"""

from repro.analysis.static.diagnostics import Diagnostic, Severity
from repro.analysis.static.projectindex import ProjectIndex
from repro.analysis.static.rulebase import (
    FileContext,
    ProjectRule,
    Rule,
    all_rules,
)
from repro.analysis.static.runner import (
    lint_paths,
    lint_source,
    main,
    run_lint,
)

__all__ = [
    "Diagnostic",
    "Severity",
    "FileContext",
    "ProjectIndex",
    "ProjectRule",
    "Rule",
    "all_rules",
    "lint_paths",
    "lint_source",
    "main",
    "run_lint",
]
