"""pccheck-lint: a concurrency-invariant static analyzer for this repo.

The checkpoint engine's correctness argument (Listing 1, §4.1) rests on
discipline that ordinary tests cannot guard: no blocking work while a
lock is held, lock-protected state never mutated outside its lock,
every ``begin()`` ticket resolved by ``commit()``/``abort()``, commit
records fenced before they can be trusted, engine errors never
swallowed, and no magic-number backoffs.  ``pccheck-lint`` encodes each
of those as an AST rule (PC001–PC008) so a future PR that silently
regresses lock or fence discipline fails CI instead of failing a
recovery two weeks later.

Entry points::

    python -m repro.cli lint src/          # via the main CLI
    pccheck-lint src/                      # console script
    make lint

Diagnostics can be silenced per line with ``# pclint: disable=PC001``
(or ``# pclint: disable`` for all rules) on the offending line or on a
standalone comment line directly above it; a whole file opts out with
``# pclint: skip-file``.
"""

from repro.analysis.static.diagnostics import Diagnostic, Severity
from repro.analysis.static.rulebase import FileContext, Rule, all_rules
from repro.analysis.static.runner import lint_paths, lint_source, main

__all__ = [
    "Diagnostic",
    "Severity",
    "FileContext",
    "Rule",
    "all_rules",
    "lint_paths",
    "lint_source",
    "main",
]
