"""Global lock-order graph and cycle enumeration for PC009.

Every ``with <lock>:`` region in the project contributes *ordering
edges*: while the region's lock is held, any lock acquired inside it —
directly by a nested ``with``, or transitively by a function the region
calls (followed through the call graph, depth-bounded) — is ordered
after it.  Two locks acquired in opposite orders on different code
paths form a cycle: the classic ABBA deadlock.

Lock identity is canonical, not lexical: ``self._lock`` inside
``CheckpointBarrier.signal`` and ``self._barrier._lock`` seen from the
coordinator both resolve to ``CheckpointBarrier._lock`` when type
inference succeeds.  Locks whose owner cannot be resolved (and function
locals, which cannot participate in a cross-function cycle) are kept
out of the graph rather than guessed — a deadlock report must name two
real locks or it is noise.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.static.callgraph import CallGraph, own_nodes
from repro.analysis.static.lockutils import expr_is_lock
from repro.analysis.static.projectindex import FunctionInfo, ProjectIndex

#: How many call edges to follow from a lock-holding region.
MAX_CALL_DEPTH = 3

#: Cap on reported cycles; beyond this the graph is already on fire.
MAX_CYCLES = 10


@dataclass(frozen=True)
class LockSite:
    """One acquisition of a canonical lock."""

    lock: str  # canonical id, e.g. ClassQualname._attr
    path: str
    line: int
    func: str  # qualname of the acquiring function


@dataclass(frozen=True)
class LockEdge:
    """``holder`` held while ``acquired`` is taken.

    ``path``/``line`` anchor the edge in the *holder's* function: the
    nested ``with`` itself, or the call expression that transitively
    acquires.  ``via`` is the call chain (callee qualnames) between the
    holding region and the acquisition, empty for a direct nesting.
    ``acquired_at`` is the actual ``with`` statement of the second
    acquisition for the report.
    """

    holder: str
    acquired: str
    path: str
    line: int
    func: str
    via: Tuple[str, ...]
    acquired_at: Tuple[str, int]


def short_lock(lock: str) -> str:
    """Human-readable form of a canonical lock id (drop the path part)."""
    parts = lock.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else lock


class LockOrderGraph:
    """All lock-ordering edges in the project, plus cycle search."""

    def __init__(self, index: ProjectIndex, graph: CallGraph) -> None:
        self._index = index
        self._graph = graph
        self.edges: List[LockEdge] = []
        self._module_globals: Dict[str, Set[str]] = {}
        self._transitive: Dict[str, List[Tuple[LockSite, Tuple[str, ...]]]] = {}
        for finfo in index.functions.values():
            self._edges_in(finfo)

    # ------------------------------------------------------------------
    # lock identity

    def lock_id(self, expr: ast.expr, func: FunctionInfo) -> Optional[str]:
        """Canonical id of a lock expression, or None when unresolvable.

        Resolution order: owner type inference (``ClassQual.attr``),
        module-level globals (``module.name``).  Locals and unresolved
        receivers return None and stay out of the graph.
        """
        index = self._index
        if isinstance(expr, ast.Attribute):
            owner = index.infer_type(expr.value, func)
            if owner is not None:
                return f"{owner.qualname}.{expr.attr}"
            return None
        if isinstance(expr, ast.Name):
            if expr.id in self._globals_of(func.module):
                return f"{func.module}.{expr.id}"
            return None
        return None

    def _globals_of(self, module: str) -> Set[str]:
        cached = self._module_globals.get(module)
        if cached is not None:
            return cached
        names: Set[str] = set()
        path = self._index._module_paths.get(module)
        record = self._index.record_for(path) if path else None
        if record is not None and record.tree is not None:
            for stmt in record.tree.body:
                if isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
                elif isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    names.add(stmt.target.id)
        self._module_globals[module] = names
        return names

    # ------------------------------------------------------------------
    # edge extraction

    def _regions(
        self, finfo: FunctionInfo
    ) -> List[Tuple[ast.With, List[Tuple[str, int]]]]:
        """(with-stmt, [(canonical lock, line)]) for one function."""
        regions = []
        for node in own_nodes(finfo.node):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            locks: List[Tuple[str, int]] = []
            for item in node.items:
                expr = item.context_expr
                if not expr_is_lock(expr):
                    continue
                lock = self.lock_id(expr, finfo)
                if lock is not None:
                    locks.append((lock, node.lineno))
            if locks:
                regions.append((node, locks))
        return regions

    def _edges_in(self, finfo: FunctionInfo) -> None:
        for region, held in self._regions(finfo):
            inner_withs = [
                n
                for body_stmt in region.body
                for n in ast.walk(body_stmt)
                if isinstance(n, (ast.With, ast.AsyncWith))
            ]
            acquired_direct: List[LockSite] = []
            for inner in inner_withs:
                for item in inner.items:
                    expr = item.context_expr
                    if not expr_is_lock(expr):
                        continue
                    lock = self.lock_id(expr, finfo)
                    if lock is not None:
                        acquired_direct.append(
                            LockSite(lock, finfo.path, inner.lineno, finfo.qualname)
                        )
            calls = [
                n
                for body_stmt in region.body
                for n in ast.walk(body_stmt)
                if isinstance(n, ast.Call)
            ]
            for holder, _line in held:
                for site in acquired_direct:
                    self._add(holder, site, finfo, site.line, via=())
                for call in calls:
                    for callee, _ in self._graph.resolve(finfo, call):
                        for site, chain in self._transitive_locks(callee):
                            self._add(
                                holder, site, finfo, call.lineno, via=chain
                            )

    def _add(
        self,
        holder: str,
        site: LockSite,
        finfo: FunctionInfo,
        line: int,
        via: Tuple[str, ...],
    ) -> None:
        if site.lock == holder:
            return  # re-entrant acquisition of the same lock (RLock)
        self.edges.append(
            LockEdge(
                holder=holder,
                acquired=site.lock,
                path=finfo.path,
                line=line,
                func=finfo.qualname,
                via=via,
                acquired_at=(site.path, site.line),
            )
        )

    def _transitive_locks(
        self, qualname: str, depth: int = 0, _seen: Optional[Set[str]] = None
    ) -> List[Tuple[LockSite, Tuple[str, ...]]]:
        """Locks ``qualname`` may acquire, with the call chain to them."""
        if depth == 0 and qualname in self._transitive:
            return self._transitive[qualname]
        seen = _seen if _seen is not None else set()
        if qualname in seen or depth > MAX_CALL_DEPTH:
            return []
        seen.add(qualname)
        finfo = self._index.functions.get(qualname)
        if finfo is None:
            return []
        results: List[Tuple[LockSite, Tuple[str, ...]]] = []
        for _region, held in self._regions(finfo):
            for lock, line in held:
                results.append(
                    (
                        LockSite(lock, finfo.path, line, finfo.qualname),
                        (qualname,),
                    )
                )
        for site in self._graph.callees_of(qualname):
            for lock_site, chain in self._transitive_locks(
                site.callee, depth + 1, seen
            ):
                results.append((lock_site, (qualname,) + chain))
        if depth == 0:
            self._transitive[qualname] = results
        return results

    # ------------------------------------------------------------------
    # cycle enumeration

    def cycles(self) -> List[List[LockEdge]]:
        """Simple lock-order cycles, each as its list of edges.

        Cycles are canonicalised (rotation starting at the smallest
        lock id) and deduplicated on their set of (holder, acquired)
        pairs, so ABBA is reported once however many regions realise
        each direction.
        """
        by_holder: Dict[str, List[LockEdge]] = {}
        best: Dict[Tuple[str, str], LockEdge] = {}
        for edge in self.edges:
            key = (edge.holder, edge.acquired)
            # Prefer the most direct witness for each ordering pair.
            if key not in best or len(edge.via) < len(best[key].via):
                best[key] = edge
        for edge in best.values():
            by_holder.setdefault(edge.holder, []).append(edge)

        found: List[List[LockEdge]] = []
        seen_keys: Set[Tuple[Tuple[str, str], ...]] = set()

        def dfs(start: str, node: str, path: List[LockEdge]) -> None:
            if len(found) >= MAX_CYCLES or len(path) > 4:
                return
            for edge in by_holder.get(node, []):
                if edge.acquired == start and path:
                    cycle = path + [edge]
                    key = tuple(
                        sorted((e.holder, e.acquired) for e in cycle)
                    )
                    if key not in seen_keys:
                        seen_keys.add(key)
                        found.append(cycle)
                    continue
                if any(e.holder == edge.acquired for e in path):
                    continue
                if edge.acquired < start:
                    continue  # canonical start: smallest lock id
                dfs(start, edge.acquired, path + [edge])

        for start in sorted(by_holder):
            dfs(start, start, [])
        return found
