"""Heuristics for recognising locks and lock-guarded regions.

CPython gives us no types at lint time, so lock detection is lexical:
an expression is "a lock" when its final name segment looks like one
(``self._lock``, ``cell.lock``, ``self._commit_write_lock``, a bare
``mutex``) or when it is a direct ``threading.Lock()``/``RLock()``
construction.  The repo's own naming convention makes this reliable;
the suppression machinery covers the rest.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.static.astutils import dotted_name, terminal_name

#: Constructors that produce lock-like objects.
LOCK_FACTORIES: Set[str] = {"Lock", "RLock", "Semaphore", "BoundedSemaphore"}

#: Substrings (within one word) that mark a name as a lock.
_LOCK_MARKERS = ("lock", "mutex")

#: Whole words that must not count as a marker hit: ``block`` contains
#: the substring ``lock``, so without this list ``blocking``/``unblock``
#: would read as locks.  The veto is per *word*, not per name — a name
#: like ``block_lock`` or ``blocking_write_lock`` still has a genuine
#: standalone ``lock`` word and is recognised.
_LOCK_VETO_WORDS = frozenset(
    {
        "block",
        "blocks",
        "blocked",
        "blocking",
        "unblock",
        "unblocked",
        "nonblocking",
    }
)

#: Identifier words: underscore- and camelCase-separated runs.
_WORD = re.compile(r"[A-Za-z][a-z0-9]*")


def name_is_lock(name: Optional[str]) -> bool:
    """Does this identifier's spelling look like a lock?"""
    if not name:
        return False
    for match in _WORD.finditer(name):
        word = match.group(0).lower()
        if word in _LOCK_VETO_WORDS:
            continue
        if any(marker in word for marker in _LOCK_MARKERS):
            return True
    return False


def expr_is_lock(expr: ast.expr) -> bool:
    """Is this with-item / call target a lock object?"""
    if isinstance(expr, ast.Call):
        callee = terminal_name(expr.func)
        return callee in LOCK_FACTORIES
    return name_is_lock(terminal_name(expr))


def with_lock_names(node: ast.With) -> List[str]:
    """Lock expressions guarded by this ``with``; empty if none."""
    names: List[str] = []
    for item in node.items:
        expr = item.context_expr
        if expr_is_lock(expr):
            names.append(dotted_name(expr) or terminal_name(expr) or "<lock>")
    return names


def iter_lock_regions(
    func: ast.AST,
) -> Iterator[Tuple[ast.With, List[str]]]:
    """Every ``with <lock>:`` statement in ``func``'s subtree."""
    for node in ast.walk(func):
        if isinstance(node, ast.With):
            names = with_lock_names(node)
            if names:
                yield node, names


def lock_attributes_of_class(cls: ast.ClassDef) -> Set[str]:
    """Attribute names this class assigns a lock object to.

    Finds ``self.X = threading.Lock()`` (and RLock/Semaphore) anywhere
    in the class body, plus attributes whose spelling is lock-like and
    assigned in ``__init__``.
    """
    attrs: Set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                if isinstance(node.value, ast.Call) and terminal_name(
                    node.value.func
                ) in LOCK_FACTORIES:
                    attrs.add(target.attr)
                elif name_is_lock(target.attr):
                    attrs.add(target.attr)
    return attrs
