"""Zero-copy escape analysis for PC011.

The zero-copy persist pipeline (PR 3/4) hands out *views* over pooled
staging buffers: ``memoryview`` slices that alias the buffer's memory
without copying.  A view is only valid while its backing buffer is
checked out of the pool; once ``pool.release(buf)`` runs, the buffer
may be recycled into another checkpoint's staging area and the view
silently reads (or worse, a writer overwrites) someone else's bytes.

This module finds, per function:

* **pooled buffers** — variables acquired from a pool-ish receiver
  (``x = self._pool.acquire(...)``) or passed to its ``release`` /
  ``recycle``;
* **views** — ``v = x.view()``, ``v = memoryview(x...)``, and aliases
  ``w = v``;
* **escapes** of those views past the buffer's release:

  - returned from the function (including ``try: return buf.view()``
    with the release in a ``finally`` — the classic escape),
  - stored on ``self`` (outliving the call frame),
  - captured by a nested function / lambda or handed to a thread-spawn
    call,
  - read on some CFG path *after* the release executed
    (use-after-release; rebinding the view ends its tracking).

The first three only fire when the function also releases the backing
buffer — a function that returns a view and never releases transfers
ownership, which is the pool's documented hand-off pattern.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.static.astutils import terminal_name
from repro.analysis.static.cfg import (
    CFG,
    build_cfg,
    iter_header_exprs,
    paths_from,
)
from repro.analysis.static.callgraph import own_nodes

#: Receiver-name substrings that mark an object as a buffer pool.
POOLISH = ("pool", "staging", "arena")

#: Calls that give a buffer back to its pool.
RELEASE_CALLS = {"release", "recycle"}

#: Calls whose arguments run on another thread / deferred context.
SPAWN_CALLS = {"Thread", "submit", "start_new_thread", "run_in_executor", "spawn"}


@dataclass(frozen=True)
class EscapeFinding:
    """One view escaping its buffer's checkout window."""

    kind: str  # return | store | capture | use-after-release
    line: int
    col: int
    view: str
    buffer: str
    detail: str


def _poolish(expr: ast.expr) -> bool:
    name = terminal_name(expr)
    if not name:
        return False
    lowered = name.lower()
    return any(marker in lowered for marker in POOLISH)


def _reads(node: ast.AST, name: str) -> bool:
    return any(
        isinstance(n, ast.Name) and n.id == name and isinstance(n.ctx, ast.Load)
        for n in ast.walk(node)
    )


def _stmt_reads(stmt: ast.stmt, name: str) -> bool:
    return any(
        isinstance(n, ast.Name) and n.id == name and isinstance(n.ctx, ast.Load)
        for n in iter_header_exprs(stmt)
    )


def _stmt_assigns(stmt: ast.stmt, name: str) -> bool:
    return any(
        isinstance(n, ast.Name) and n.id == name and isinstance(n.ctx, ast.Store)
        for n in iter_header_exprs(stmt)
    )


def _fresh_view_of(expr: ast.AST, buffers: Set[str]) -> Optional[str]:
    """Buffer name if ``expr`` is a direct ``buf.view(...)`` over one."""
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr == "view"
        and isinstance(expr.func.value, ast.Name)
        and expr.func.value.id in buffers
    ):
        return expr.func.value.id
    return None


def analyze_function(func_node: ast.AST) -> List[EscapeFinding]:
    """All view escapes in one function (nested defs analysed separately)."""
    pooled, views, releases = _collect(func_node)
    if not views and not any(
        isinstance(n, ast.Call)
        and isinstance(n.func, ast.Attribute)
        and n.func.attr == "view"
        for n in own_nodes(func_node)
    ):
        return []
    released: Set[str] = {buf for _, buf in releases}
    findings: List[EscapeFinding] = []
    escaped_views = {v: b for v, b in views.items() if b in released}

    for node in own_nodes(func_node):
        # -- returned views -------------------------------------------
        if isinstance(node, ast.Return) and node.value is not None:
            for view, buf in escaped_views.items():
                if _reads(node.value, view):
                    findings.append(
                        EscapeFinding(
                            "return", node.lineno, node.col_offset, view, buf,
                            f"view '{view}' of pooled buffer '{buf}' is "
                            f"returned, but the buffer is released in this "
                            f"function",
                        )
                    )
            buf = _fresh_view_of(node.value, released)
            if buf is not None:
                findings.append(
                    EscapeFinding(
                        "return", node.lineno, node.col_offset, "<view>", buf,
                        f"a fresh view of pooled buffer '{buf}' is returned, "
                        f"but the buffer is released in this function",
                    )
                )
        # -- views stored on self -------------------------------------
        if isinstance(node, ast.Assign):
            for target in node.targets:
                base = target
                while isinstance(base, (ast.Attribute, ast.Subscript)):
                    base = base.value
                if not (isinstance(base, ast.Name) and base.id == "self"):
                    continue
                if target is base:
                    continue
                for view, buf in escaped_views.items():
                    if _reads(node.value, view):
                        findings.append(
                            EscapeFinding(
                                "store", node.lineno, node.col_offset, view,
                                buf,
                                f"view '{view}' of pooled buffer '{buf}' is "
                                f"stored on self and outlives the buffer's "
                                f"release",
                            )
                        )
                fresh = _fresh_view_of(node.value, released)
                if fresh is not None:
                    findings.append(
                        EscapeFinding(
                            "store", node.lineno, node.col_offset, "<view>",
                            fresh,
                            f"a fresh view of pooled buffer '{fresh}' is "
                            f"stored on self and outlives the buffer's "
                            f"release",
                        )
                    )
        # -- views appended to self-owned containers ------------------
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in {"append", "add", "put", "setdefault"}
        ):
            base = node.func.value
            while isinstance(base, (ast.Attribute, ast.Subscript)):
                base = base.value
            if isinstance(base, ast.Name) and base.id == "self":
                for view, buf in escaped_views.items():
                    if any(_reads(arg, view) for arg in node.args):
                        findings.append(
                            EscapeFinding(
                                "store", node.lineno, node.col_offset, view,
                                buf,
                                f"view '{view}' of pooled buffer '{buf}' is "
                                f"stored on self and outlives the buffer's "
                                f"release",
                            )
                        )
                for arg in node.args:
                    fresh = _fresh_view_of(arg, released)
                    if fresh is not None:
                        findings.append(
                            EscapeFinding(
                                "store", node.lineno, node.col_offset,
                                "<view>", fresh,
                                f"a fresh view of pooled buffer '{fresh}' is "
                                f"stored on self and outlives the buffer's "
                                f"release",
                            )
                        )
        # -- views handed to spawn calls ------------------------------
        if isinstance(node, ast.Call) and (
            terminal_name(node.func) in SPAWN_CALLS
        ):
            for view, buf in escaped_views.items():
                captured = any(
                    _reads(arg, view) for arg in node.args
                ) or any(
                    kw.value is not None and _reads(kw.value, view)
                    for kw in node.keywords
                )
                if captured:
                    findings.append(
                        EscapeFinding(
                            "capture", node.lineno, node.col_offset, view, buf,
                            f"view '{view}' of pooled buffer '{buf}' is "
                            f"passed to '{terminal_name(node.func)}' and may "
                            f"run after the buffer's release",
                        )
                    )
            for arg in list(node.args) + [
                kw.value for kw in node.keywords if kw.value is not None
            ]:
                fresh = next(
                    (
                        buf
                        for sub in ast.walk(arg)
                        if (buf := _fresh_view_of(sub, released)) is not None
                    ),
                    None,
                )
                if fresh is not None:
                    findings.append(
                        EscapeFinding(
                            "capture", node.lineno, node.col_offset, "<view>",
                            fresh,
                            f"a fresh view of pooled buffer '{fresh}' is "
                            f"passed to '{terminal_name(node.func)}' and may "
                            f"run after the buffer's release",
                        )
                    )

    # -- closure capture by nested defs -------------------------------
    for node in ast.walk(func_node):
        if node is func_node or not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        inner_params = {
            a.arg
            for a in list(node.args.posonlyargs)
            + list(node.args.args)
            + list(node.args.kwonlyargs)
        }
        for view, buf in escaped_views.items():
            if view in inner_params:
                continue
            body = node.body if isinstance(node.body, list) else [node.body]
            if any(_reads(stmt, view) for stmt in body):
                findings.append(
                    EscapeFinding(
                        "capture", node.lineno, node.col_offset, view, buf,
                        f"view '{view}' of pooled buffer '{buf}' is captured "
                        f"by a nested function and may run after the "
                        f"buffer's release",
                    )
                )

    findings.extend(_use_after_release(func_node, views, releases))
    return findings


def _collect(
    func_node: ast.AST,
) -> Tuple[Set[str], Dict[str, str], List[Tuple[ast.Call, str]]]:
    """(pooled buffer names, view -> buffer, [(release call, buffer)])."""
    pooled: Set[str] = set()
    releases: List[Tuple[ast.Call, str]] = []
    assigns: List[ast.Assign] = []
    for node in own_nodes(func_node):
        if isinstance(node, ast.Assign):
            assigns.append(node)
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in RELEASE_CALLS
            and _poolish(node.func.value)
            and node.args
            and isinstance(node.args[0], ast.Name)
        ):
            pooled.add(node.args[0].id)
            releases.append((node, node.args[0].id))
    for node in assigns:
        if (
            len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Attribute)
            and node.value.func.attr == "acquire"
            and _poolish(node.value.func.value)
        ):
            pooled.add(node.targets[0].id)
    views: Dict[str, str] = {}
    changed = True
    while changed:
        changed = False
        for node in assigns:
            if len(node.targets) != 1 or not isinstance(
                node.targets[0], ast.Name
            ):
                continue
            target = node.targets[0].id
            if target in views:
                continue
            buf = _view_source(node.value, pooled, views)
            if buf is not None:
                views[target] = buf
                changed = True
    return pooled, views, releases


def _view_source(
    value: ast.expr, pooled: Set[str], views: Dict[str, str]
) -> Optional[str]:
    """The pooled buffer a view expression derives from, if any."""
    if isinstance(value, ast.Call):
        func = value.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "view"
            and isinstance(func.value, ast.Name)
            and func.value.id in pooled
        ):
            return func.value.id
        if isinstance(func, ast.Name) and func.id == "memoryview" and value.args:
            arg = value.args[0]
            base = arg
            while isinstance(base, (ast.Attribute, ast.Subscript)):
                base = base.value
            if isinstance(base, ast.Name) and base.id in pooled:
                return base.id
    if isinstance(value, ast.Name):
        if value.id in views:
            return views[value.id]
    if isinstance(value, ast.Subscript):
        base = value.value
        if isinstance(base, ast.Name) and base.id in views:
            return views[base.id]
    return None


def _use_after_release(
    func_node: ast.AST,
    views: Dict[str, str],
    releases: List[Tuple[ast.Call, str]],
) -> List[EscapeFinding]:
    """Views read on a CFG path after their buffer was released."""
    if not views or not releases:
        return []
    cfg: CFG = build_cfg(func_node)
    findings: List[EscapeFinding] = []
    reported: Set[Tuple[str, int]] = set()
    for call, buf in releases:
        release_node = cfg.node_of(call)
        if release_node is None:
            continue
        for view, owner in views.items():
            if owner != buf:
                continue
            for reached in paths_from(
                cfg,
                cfg.succ[release_node],
                stop=lambda nid, v=view: _stmt_assigns(cfg.statements[nid], v),
            ):
                stmt = cfg.statements[reached]
                if _stmt_reads(stmt, view) and (view, stmt.lineno) not in reported:
                    reported.add((view, stmt.lineno))
                    findings.append(
                        EscapeFinding(
                            "use-after-release",
                            stmt.lineno,
                            stmt.col_offset,
                            view,
                            buf,
                            f"view '{view}' is read after pooled buffer "
                            f"'{buf}' was released on this path",
                        )
                    )
    return findings
