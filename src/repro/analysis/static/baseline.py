"""Checked-in finding baselines: fail CI only on *new* findings.

A baseline is a JSON snapshot of known findings.  Each finding is
fingerprinted on ``(path, rule, message)`` — deliberately **not** on
the line number, so unrelated edits that shift code up or down do not
resurrect baselined findings.  Identical findings are counted: if the
baseline holds two occurrences of a fingerprint and a run produces
three, one is new.

The workflow:

* ``pccheck-lint --write-baseline lint-baseline.json src`` snapshots
  the current findings;
* ``pccheck-lint --baseline lint-baseline.json src`` subtracts them —
  the report and the exit code reflect only findings the baseline does
  not cover.

The baseline is a ratchet for *legacy* debt, not a dumping ground: new
whole-program findings (PC009–PC011) in ``repro/core`` are fixed or
carry an inline justified suppression, never silently baselined.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from typing import Dict, List, Sequence, Tuple

from repro.analysis.static.diagnostics import Diagnostic

#: Bump when the fingerprint or file layout changes.
BASELINE_VERSION = 1


def fingerprint(diagnostic: Diagnostic) -> str:
    """Line-number-insensitive identity of one finding."""
    path = diagnostic.path.replace(os.sep, "/")
    return f"{path}::{diagnostic.rule_id}::{diagnostic.message}"


def load_baseline(path: str) -> Counter:
    """fingerprint -> allowed count, from a baseline file."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {payload.get('version')!r} "
            f"(expected {BASELINE_VERSION})"
        )
    counts: Counter = Counter()
    for entry in payload.get("findings", []):
        key = f"{entry['path']}::{entry['rule']}::{entry['message']}"
        counts[key] += int(entry.get("count", 1))
    return counts


def save_baseline(path: str, diagnostics: Sequence[Diagnostic]) -> None:
    """Snapshot ``diagnostics`` as the new baseline."""
    grouped: Dict[str, Diagnostic] = {}
    counts: Counter = Counter()
    for diagnostic in diagnostics:
        key = fingerprint(diagnostic)
        grouped.setdefault(key, diagnostic)
        counts[key] += 1
    findings = [
        {
            "path": grouped[key].path.replace(os.sep, "/"),
            "rule": grouped[key].rule_id,
            "message": grouped[key].message,
            "count": counts[key],
        }
        for key in sorted(grouped)
    ]
    payload = {"version": BASELINE_VERSION, "findings": findings}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def apply_baseline(
    diagnostics: Sequence[Diagnostic], baseline: Counter
) -> Tuple[List[Diagnostic], int]:
    """(new findings, baselined count) after subtracting the baseline."""
    remaining = Counter(baseline)
    fresh: List[Diagnostic] = []
    matched = 0
    for diagnostic in sorted(diagnostics):
        key = fingerprint(diagnostic)
        if remaining[key] > 0:
            remaining[key] -= 1
            matched += 1
        else:
            fresh.append(diagnostic)
    return fresh, matched
