"""Pass 1 of the whole-program analysis: the shared project index.

The index parses every file exactly once and exposes everything the
whole-program rules (PC009–PC011) and the incremental runner need:

* per-file records — source, AST, suppression directives, and the
  per-file rule findings computed at parse time;
* a project-wide symbol table — modules, classes (with base classes,
  methods and inferred attribute types) and functions;
* content-hash incrementality — :meth:`ProjectIndex.refresh` re-parses
  only files whose SHA-256 changed since the last refresh, so a warm
  run over an unchanged tree parses **zero** files (observable through
  :attr:`ProjectIndex.parse_count`, which the incremental-cache tests
  and the CI cache rely on);
* pickling — the whole index round-trips through ``pickle`` so CI can
  key a cache file on source hashes and skip pass 1 entirely on warm
  runs.

Name resolution is heuristic (CPython gives the linter no types): it
combines per-module symbol tables, project-internal import maps, local
assignment/annotation type inference, and a unique-global-name
fallback.  :mod:`repro.analysis.static.callgraph` builds the call graph
on top of these primitives.
"""

from __future__ import annotations

import ast
import hashlib
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.static.cfg import CFG, build_cfg
from repro.analysis.static.diagnostics import (
    Diagnostic,
    SYNTAX_RULE_ID,
)
from repro.analysis.static.suppress import SuppressionIndex

#: Bump when the record layout changes; stale pickled caches are dropped.
CACHE_VERSION = 2


@dataclass
class FunctionInfo:
    """One function or method, addressable by qualified name."""

    qualname: str
    name: str
    module: str
    path: str
    lineno: int
    node: object  # ast.FunctionDef | ast.AsyncFunctionDef
    cls: Optional[str] = None  # owning class qualname, if a method
    _cfg: Optional[CFG] = field(default=None, repr=False)

    @property
    def cfg(self) -> CFG:
        if self._cfg is None:
            self._cfg = build_cfg(self.node)
        return self._cfg


@dataclass
class ClassInfo:
    """One class: methods, declared bases, and inferred attribute types."""

    qualname: str
    name: str
    module: str
    path: str
    node: object  # ast.ClassDef
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, str] = field(default_factory=dict)  # name -> func qualname
    #: self.<attr> -> class qualname, inferred from constructor calls.
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class FileRecord:
    """Everything pass 1 learned about one source file."""

    path: str
    sha: str
    source: str
    tree: Optional[ast.Module]
    module: str
    suppressions: SuppressionIndex
    #: Per-file rule findings (suppression-filtered) frozen at parse time.
    file_diagnostics: List[Diagnostic] = field(default_factory=list)
    readable: bool = True


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def module_name_of(path: str) -> str:
    """A dotted module id for ``path``, unique per file.

    Uses the full path so fixture trees never collide; import
    resolution matches on *suffixes* of this id (see
    :meth:`ProjectIndex.module_for`), which recovers the conventional
    ``repro.core.writer``-style names for files under a ``src`` root.
    """
    norm = os.path.normpath(os.path.abspath(path))
    if norm.endswith(".py"):
        norm = norm[: -len(".py")]
    parts = [p for p in norm.replace(os.sep, "/").split("/") if p]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or "module"


class ProjectIndex:
    """Incremental whole-project symbol and AST index."""

    def __init__(self) -> None:
        self.cache_version = CACHE_VERSION
        self.records: Dict[str, FileRecord] = {}
        #: Files parsed by *this* instance since construction / unpickle.
        self.parse_count = 0
        self._symbols_dirty = True
        self._functions: Dict[str, FunctionInfo] = {}
        self._classes: Dict[str, ClassInfo] = {}
        self._functions_by_name: Dict[str, List[str]] = {}
        self._classes_by_name: Dict[str, List[str]] = {}
        self._imports: Dict[str, Dict[str, str]] = {}  # module -> local -> target
        self._module_paths: Dict[str, str] = {}  # full module id -> path
        #: Per-run memo for derived analyses (call graph, lock graph);
        #: cleared whenever any record changes and never pickled.
        self.derived: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # pickling: drop unpicklable/derived state, reset the parse counter

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_symbols_dirty"] = True
        state["_functions"] = {}
        state["_classes"] = {}
        state["_functions_by_name"] = {}
        state["_classes_by_name"] = {}
        state["_imports"] = {}
        state["_module_paths"] = {}
        state["derived"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # A thawed index has parsed nothing yet: warm-cache runs report
        # only the parses they actually perform.
        self.parse_count = 0

    # ------------------------------------------------------------------
    # pass 1: parse + per-file rules, incrementally

    def refresh(self, paths: Sequence[str]) -> List[str]:
        """Bring the index up to date for every file under ``paths``.

        Returns the ordered list of files covered by this refresh.
        Unchanged files (same content hash) are *not* re-parsed; their
        cached records — including per-file diagnostics — are reused.
        """
        from repro.analysis.static.runner import iter_python_files

        seen: List[str] = []
        changed = False
        for path in iter_python_files(paths):
            key = os.path.normpath(path)
            seen.append(key)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    source = handle.read()
            except (OSError, UnicodeDecodeError) as exc:
                self.records[key] = FileRecord(
                    path=key,
                    sha="",
                    source="",
                    tree=None,
                    module=module_name_of(key),
                    suppressions=SuppressionIndex(),
                    file_diagnostics=[
                        Diagnostic(
                            path=key,
                            line=1,
                            col=1,
                            rule_id=SYNTAX_RULE_ID,
                            message=f"cannot read file: {exc}",
                        )
                    ],
                    readable=False,
                )
                changed = True
                continue
            sha = _sha256(source.encode("utf-8"))
            record = self.records.get(key)
            if record is not None and record.sha == sha and record.readable:
                continue
            self.records[key] = self._parse(key, source, sha)
            changed = True
        # Prune records for files that vanished from the walked roots.
        seen_set = set(seen)
        roots = [os.path.normpath(p) for p in paths]
        for key in list(self.records):
            if key in seen_set:
                continue
            if any(key == r or key.startswith(r + os.sep) for r in roots):
                del self.records[key]
                changed = True
        if changed:
            self._symbols_dirty = True
            self.derived.clear()
        return seen

    def _parse(self, path: str, source: str, sha: str) -> FileRecord:
        from repro.analysis.static.rulebase import FileContext, all_file_rules

        self.parse_count += 1
        module = module_name_of(path)
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return FileRecord(
                path=path,
                sha=sha,
                source=source,
                tree=None,
                module=module,
                suppressions=SuppressionIndex(),
                file_diagnostics=[
                    Diagnostic(
                        path=path,
                        line=exc.lineno or 1,
                        col=(exc.offset or 0) + 1,
                        rule_id=SYNTAX_RULE_ID,
                        message=f"syntax error: {exc.msg}",
                    )
                ],
            )
        suppressions = SuppressionIndex.from_source(source)
        diagnostics: List[Diagnostic] = []
        if not suppressions.skip_file:
            ctx = FileContext(
                path=path, source=source, tree=tree, project_mode=True
            )
            for rule in all_file_rules():
                diagnostics.extend(rule.check(ctx))
            diagnostics = sorted(
                d
                for d in set(diagnostics)
                if not suppressions.is_suppressed(d, project=False)
            )
        return FileRecord(
            path=path,
            sha=sha,
            source=source,
            tree=tree,
            module=module,
            suppressions=suppressions,
            file_diagnostics=diagnostics,
        )

    # ------------------------------------------------------------------
    # symbol table (derived lazily from the records)

    def _ensure_symbols(self) -> None:
        if not self._symbols_dirty:
            return
        self._functions = {}
        self._classes = {}
        self._functions_by_name = {}
        self._classes_by_name = {}
        self._imports = {}
        self._module_paths = {}
        for record in self.records.values():
            if record.tree is None:
                continue
            self._module_paths[record.module] = record.path
            self._imports[record.module] = _import_map(record.tree)
            self._collect_defs(record)
        # Mark clean *before* attribute-type inference: it resolves
        # class names through the lookups above, which would otherwise
        # re-enter this method forever.
        self._symbols_dirty = False
        self._infer_attr_types()

    def _collect_defs(self, record: FileRecord) -> None:
        module = record.module

        def walk(body: Iterable[ast.stmt], prefix: str, cls: Optional[str]) -> None:
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{prefix}.{stmt.name}"
                    info = FunctionInfo(
                        qualname=qual,
                        name=stmt.name,
                        module=module,
                        path=record.path,
                        lineno=stmt.lineno,
                        node=stmt,
                        cls=cls,
                    )
                    self._functions[qual] = info
                    self._functions_by_name.setdefault(stmt.name, []).append(qual)
                    if cls is not None:
                        self._classes[cls].methods.setdefault(stmt.name, qual)
                    walk(stmt.body, qual, None)
                elif isinstance(stmt, ast.ClassDef):
                    qual = f"{prefix}.{stmt.name}"
                    cinfo = ClassInfo(
                        qualname=qual,
                        name=stmt.name,
                        module=module,
                        path=record.path,
                        node=stmt,
                        bases=[b for b in map(_base_name, stmt.bases) if b],
                    )
                    self._classes[qual] = cinfo
                    self._classes_by_name.setdefault(stmt.name, []).append(qual)
                    walk(stmt.body, qual, qual)

        walk(record.tree.body, module, None)

    def _infer_attr_types(self) -> None:
        for cinfo in self._classes.values():
            for method_qual in cinfo.methods.values():
                finfo = self._functions.get(method_qual)
                if finfo is None:
                    continue
                env = self.local_types(finfo)
                for stmt in ast.walk(finfo.node):
                    if not isinstance(stmt, ast.Assign):
                        continue
                    resolved = self._expr_class_qual(stmt.value, finfo, env)
                    if resolved is None:
                        continue
                    for target in stmt.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            cinfo.attr_types.setdefault(target.attr, resolved)

    # ------------------------------------------------------------------
    # lookups

    @property
    def functions(self) -> Dict[str, FunctionInfo]:
        self._ensure_symbols()
        return self._functions

    @property
    def classes(self) -> Dict[str, ClassInfo]:
        self._ensure_symbols()
        return self._classes

    def functions_named(self, name: str) -> List[FunctionInfo]:
        self._ensure_symbols()
        return [
            self._functions[q] for q in self._functions_by_name.get(name, [])
        ]

    def record_for(self, path: str) -> Optional[FileRecord]:
        return self.records.get(os.path.normpath(path))

    def module_for(self, dotted: str) -> Optional[str]:
        """Resolve a dotted module reference to an indexed module id.

        Matches on suffix: ``repro.core.writer`` finds the record whose
        path-derived id ends with that suffix (unique match required).
        """
        self._ensure_symbols()
        if dotted in self._module_paths:
            return dotted
        hits = [
            module
            for module in self._module_paths
            if module.endswith("." + dotted)
        ]
        if len(hits) == 1:
            return hits[0]
        return None

    def resolve_class(
        self, name: str, module: str
    ) -> Optional[ClassInfo]:
        """A class by simple or dotted name, as seen from ``module``."""
        self._ensure_symbols()
        if "." in name:
            # Dotted: try an import alias for the head, else a suffix match.
            head, _, rest = name.partition(".")
            imports = self._imports.get(module, {})
            target = imports.get(head)
            if target is not None:
                return self.resolve_class_qual(f"{target}.{rest}")
            return self.resolve_class_qual(name)
        own = self._classes.get(f"{module}.{name}")
        if own is not None:
            return own
        imports = self._imports.get(module, {})
        target = imports.get(name)
        if target is not None:
            resolved = self.resolve_class_qual(target)
            if resolved is not None:
                return resolved
        hits = self._classes_by_name.get(name, [])
        if len(hits) == 1:
            return self._classes[hits[0]]
        return None

    def resolve_class_qual(self, dotted: str) -> Optional[ClassInfo]:
        """A class from a dotted ``module...Class`` reference."""
        self._ensure_symbols()
        if dotted in self._classes:
            return self._classes[dotted]
        head, _, cls_name = dotted.rpartition(".")
        if not head:
            return None
        module = self.module_for(head)
        if module is not None:
            return self._classes.get(f"{module}.{cls_name}")
        return None

    def method_on(
        self, cinfo: ClassInfo, name: str, _seen: Optional[Set[str]] = None
    ) -> Optional[FunctionInfo]:
        """Look ``name`` up on ``cinfo`` and its project-local bases."""
        self._ensure_symbols()
        seen = _seen if _seen is not None else set()
        if cinfo.qualname in seen:
            return None
        seen.add(cinfo.qualname)
        qual = cinfo.methods.get(name)
        if qual is not None:
            return self._functions.get(qual)
        for base in cinfo.bases:
            base_info = self.resolve_class(base, cinfo.module)
            if base_info is not None:
                found = self.method_on(base_info, name, seen)
                if found is not None:
                    return found
        return None

    # ------------------------------------------------------------------
    # lightweight type inference

    def local_types(self, func: FunctionInfo) -> Dict[str, str]:
        """name -> class qualname for locals/params with inferable types."""
        env: Dict[str, str] = {}
        args = getattr(func.node, "args", None)
        if args is not None:
            for arg in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
            ):
                if arg.annotation is None:
                    continue
                cls = self._annotation_class(arg.annotation, func.module)
                if cls is not None:
                    env[arg.arg] = cls.qualname
        for stmt in ast.walk(func.node):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    resolved = self._expr_class_qual(stmt.value, func, env)
                    if resolved is not None:
                        env.setdefault(target.id, resolved)
        return env

    def _annotation_class(
        self, annotation: ast.expr, module: str
    ) -> Optional[ClassInfo]:
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            return self.resolve_class(annotation.value, module)
        if isinstance(annotation, ast.Subscript):
            # Optional[X] / "Optional[X]" style: unwrap one level.
            return self._annotation_class(annotation.slice, module)
        if isinstance(annotation, ast.Name):
            return self.resolve_class(annotation.id, module)
        if isinstance(annotation, ast.Attribute):
            dotted = _dotted(annotation)
            if dotted:
                return self.resolve_class(dotted, module)
        return None

    def _expr_class_qual(
        self, expr: ast.expr, func: FunctionInfo, env: Dict[str, str]
    ) -> Optional[str]:
        """Class qualname the expression evaluates to, if inferable."""
        if isinstance(expr, ast.Call):
            callee = expr.func
            if isinstance(callee, ast.Name):
                cls = self.resolve_class(callee.id, func.module)
                return cls.qualname if cls else None
            if isinstance(callee, ast.Attribute):
                dotted = _dotted(callee)
                if dotted:
                    cls = self.resolve_class(dotted, func.module)
                    return cls.qualname if cls else None
            return None
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            owner = self.infer_type(expr.value, func, env)
            if owner is not None:
                return owner.attr_types.get(expr.attr)
        return None

    def infer_type(
        self,
        expr: ast.expr,
        func: FunctionInfo,
        env: Optional[Dict[str, str]] = None,
    ) -> Optional[ClassInfo]:
        """Best-effort class of ``expr`` inside ``func``."""
        self._ensure_symbols()
        if env is None:
            env = self.local_types(func)
        if isinstance(expr, ast.Name):
            if expr.id in ("self", "cls") and func.cls is not None:
                return self._classes.get(func.cls)
            qual = env.get(expr.id)
            return self._classes.get(qual) if qual else None
        if isinstance(expr, ast.Attribute):
            owner = self.infer_type(expr.value, func, env)
            if owner is None:
                return None
            qual = owner.attr_types.get(expr.attr)
            return self._classes.get(qual) if qual else None
        if isinstance(expr, ast.Call):
            qual = self._expr_class_qual(expr, func, env)
            return self._classes.get(qual) if qual else None
        return None


def _import_map(tree: ast.Module) -> Dict[str, str]:
    """local name -> dotted target for module-level imports."""
    imports: Dict[str, str] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                imports[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(stmt, ast.ImportFrom) and stmt.module:
            for alias in stmt.names:
                imports[alias.asname or alias.name] = (
                    f"{stmt.module}.{alias.name}"
                )
    return imports


def _base_name(expr: ast.expr) -> Optional[str]:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return _dotted(expr)
    return None


def _dotted(expr: ast.expr) -> Optional[str]:
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def paths_covered(
    index: ProjectIndex, paths: Sequence[str]
) -> List[Tuple[str, FileRecord]]:
    """(path, record) pairs for every indexed file, ordered by path."""
    return sorted(index.records.items())
