"""Suppression comments: ``# pclint: disable=PC001`` and friends.

Two scopes are supported:

* a trailing comment on the flagged line, or a standalone comment on
  the line directly above it, silences the listed rules (or all rules
  when no ``=RULES`` part is given) for that line;
* ``# pclint: skip-file`` anywhere in the file opts the whole file out.

Multi-rule directives (``# pclint: disable=PC001,PC009``) silence each
listed rule.  Project-mode findings (PC009–PC011) are suppressed at
their *anchor* line — for an interprocedural finding that is the call
site or acquisition site the diagnostic points at, so the comment sits
next to the code being excused.

Suppressions are parsed from the token stream, not with regexes over
raw lines, so string literals containing ``pclint:`` never trigger.

Every directive tracks whether it matched a finding, split by phase:
``used_file`` is frozen into the incremental cache alongside the
per-file diagnostics, while ``used_project`` is recomputed on every
run (cross-file findings can appear or vanish when *other* files
change).  ``--warn-unused-suppressions`` reports directives that
matched nothing in either phase.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.analysis.static.diagnostics import Diagnostic

_DIRECTIVE = re.compile(
    r"#\s*pclint:\s*(?P<verb>disable|skip-file)\s*(?:=\s*(?P<rules>[A-Z0-9_,\s]+))?"
)

#: Marker meaning "every rule" (a bare ``disable`` with no rule list).
ALL_RULES: FrozenSet[str] = frozenset({"*"})


@dataclass
class Directive:
    """One ``# pclint: disable`` comment and the lines it covers."""

    line: int  # line the comment sits on (anchor for unused reports)
    lines: Tuple[int, ...]  # source lines the directive silences
    rules: FrozenSet[str]  # rule ids, or {"*"} for everything
    used_file: bool = False  # matched a per-file finding (cached)
    used_project: bool = False  # matched a project finding (per run)

    def covers(self, diagnostic: Diagnostic) -> bool:
        if diagnostic.line not in self.lines:
            return False
        return "*" in self.rules or diagnostic.rule_id in self.rules

    @property
    def used(self) -> bool:
        return self.used_file or self.used_project


@dataclass
class SuppressionIndex:
    """Per-line map of suppressed rule ids for one source file."""

    skip_file: bool = False
    directives: List[Directive] = field(default_factory=list)

    @property
    def by_line(self) -> Dict[int, FrozenSet[str]]:
        """line -> union of rule ids suppressed there (legacy view)."""
        merged: Dict[int, FrozenSet[str]] = {}
        for directive in self.directives:
            for line in directive.lines:
                merged[line] = merged.get(line, frozenset()) | directive.rules
        return merged

    @classmethod
    def from_source(cls, source: str) -> "SuppressionIndex":
        """Scan ``source`` for pclint directives."""
        index = cls()
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
        except (tokenize.TokenError, SyntaxError, IndentationError):
            return index
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            rules = _parse_directive(token.string)
            if rules is None:
                continue
            if rules == frozenset({"skip-file"}):
                index.skip_file = True
                continue
            line = token.start[0]
            lines = [line]
            # A comment that is the whole line covers the next line too,
            # so multi-line statements can carry a justification above.
            if token.line.strip().startswith("#"):
                lines.append(line + 1)
            index.directives.append(
                Directive(line=line, lines=tuple(lines), rules=rules)
            )
        return index

    def is_suppressed(self, diagnostic: Diagnostic, project: bool = False) -> bool:
        """True when ``diagnostic`` is silenced; marks directives used.

        ``project`` selects which usage flag the match sets — project
        usage is transient per run (see :meth:`reset_project_uses`),
        per-file usage is frozen into the incremental cache.
        """
        if self.skip_file:
            return True
        hit = False
        for directive in self.directives:
            if directive.covers(diagnostic):
                hit = True
                if project:
                    directive.used_project = True
                else:
                    directive.used_file = True
        return hit

    def reset_project_uses(self) -> None:
        """Forget project-phase usage before a fresh project pass."""
        for directive in self.directives:
            directive.used_project = False

    def unused_directives(self) -> List[Directive]:
        """Directives that silenced nothing (stale suppressions)."""
        return [d for d in self.directives if not d.used]


def _parse_directive(comment: str) -> Optional[FrozenSet[str]]:
    match = _DIRECTIVE.search(comment)
    if match is None:
        return None
    if match.group("verb") == "skip-file":
        return frozenset({"skip-file"})
    raw = match.group("rules")
    if not raw:
        return ALL_RULES
    rules = frozenset(part.strip() for part in raw.split(",") if part.strip())
    return rules or ALL_RULES
