"""Suppression comments: ``# pclint: disable=PC001`` and friends.

Two scopes are supported:

* a trailing comment on the flagged line, or a standalone comment on
  the line directly above it, silences the listed rules (or all rules
  when no ``=RULES`` part is given) for that line;
* ``# pclint: skip-file`` anywhere in the file opts the whole file out.

Suppressions are parsed from the token stream, not with regexes over
raw lines, so string literals containing ``pclint:`` never trigger.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional

from repro.analysis.static.diagnostics import Diagnostic

_DIRECTIVE = re.compile(
    r"#\s*pclint:\s*(?P<verb>disable|skip-file)\s*(?:=\s*(?P<rules>[A-Z0-9_,\s]+))?"
)

#: Marker meaning "every rule" (a bare ``disable`` with no rule list).
ALL_RULES: FrozenSet[str] = frozenset({"*"})


@dataclass
class SuppressionIndex:
    """Per-line map of suppressed rule ids for one source file."""

    skip_file: bool = False
    #: line number -> rule ids suppressed there ({"*"} = everything).
    by_line: Dict[int, FrozenSet[str]] = field(default_factory=dict)

    @classmethod
    def from_source(cls, source: str) -> "SuppressionIndex":
        """Scan ``source`` for pclint directives."""
        index = cls()
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
        except (tokenize.TokenError, SyntaxError, IndentationError):
            return index
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            rules = _parse_directive(token.string)
            if rules is None:
                continue
            if rules == frozenset({"skip-file"}):
                index.skip_file = True
                continue
            line = token.start[0]
            index._add(line, rules)
            # A comment that is the whole line covers the next line too,
            # so multi-line statements can carry a justification above.
            if token.line.strip().startswith("#"):
                index._add(line + 1, rules)
        return index

    def _add(self, line: int, rules: FrozenSet[str]) -> None:
        existing = self.by_line.get(line, frozenset())
        self.by_line[line] = existing | rules

    def is_suppressed(self, diagnostic: Diagnostic) -> bool:
        """True when ``diagnostic`` is silenced by a directive."""
        if self.skip_file:
            return True
        rules = self.by_line.get(diagnostic.line)
        if rules is None:
            return False
        return "*" in rules or diagnostic.rule_id in rules


def _parse_directive(comment: str) -> Optional[FrozenSet[str]]:
    match = _DIRECTIVE.search(comment)
    if match is None:
        return None
    if match.group("verb") == "skip-file":
        return frozenset({"skip-file"})
    raw = match.group("rules")
    if not raw:
        return ALL_RULES
    rules = frozenset(part.strip() for part in raw.split(",") if part.strip())
    return rules or ALL_RULES
