"""PC005: bare/over-broad except that can swallow engine errors.

``EngineError``, ``OutOfSpaceError`` and the crash-injection
exceptions are load-bearing: a handler that catches ``Exception`` (or
everything) and neither re-raises nor does anything with the caught
error turns a failed checkpoint into a silently missing recovery
point.  A broad handler is accepted when it

* re-raises (``raise`` anywhere in the handler body), or
* binds the exception (``as exc``) and actually uses the name —
  storing it on a future, appending it to an error list, wrapping it.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.static.diagnostics import Diagnostic
from repro.analysis.static.rulebase import FileContext, Rule, register

_BROAD = {"Exception", "BaseException"}


def _broad_names(node: ast.expr) -> bool:
    """Is this except-clause type Exception/BaseException (or a tuple
    containing one)?"""
    if isinstance(node, ast.Name):
        return node.id in _BROAD
    if isinstance(node, ast.Attribute):
        return node.attr in _BROAD
    if isinstance(node, ast.Tuple):
        return any(_broad_names(elt) for elt in node.elts)
    return False


def _reraises(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
    return False


def _uses_bound_name(handler: ast.ExceptHandler) -> bool:
    if handler.name is None:
        return False
    for node in ast.walk(handler):
        if isinstance(node, ast.Name) and node.id == handler.name:
            return True
    return False


@register
class SwallowedEngineError(Rule):
    rule_id = "PC005"
    title = "broad except may swallow EngineError/OutOfSpaceError"

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.report(
                    ctx,
                    node,
                    "bare 'except:' swallows EngineError/OutOfSpaceError "
                    "(and KeyboardInterrupt); catch a specific exception",
                )
                continue
            if not _broad_names(node.type):
                continue
            if _reraises(node) or _uses_bound_name(node):
                continue
            caught = getattr(node.type, "id", None) or getattr(
                node.type, "attr", "Exception"
            )
            yield self.report(
                ctx,
                node,
                f"'except {caught}' neither re-raises nor uses the caught "
                f"error; EngineError/OutOfSpaceError would vanish here",
            )
