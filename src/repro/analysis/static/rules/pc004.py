"""PC004: commit-record writes must respect fence discipline.

The recovery protocol is only sound when (a) the payload and slot
header are durable *before* the commit record can name them, and
(b) the commit record itself is fenced before anyone acts on the
commit.  Lexically, inside one function that means:

* a commit-record write (a ``.write(...)`` whose arguments involve
  ``encode_commit_record`` or ``commit_offset``) must be followed by a
  fence call (``persist``/``fsync``/``msync``/``sfence``...) before the
  function can return, and
* if the same function wrote slot data or a slot header earlier, a
  fence must sit between that write and the commit-record write.

Cross-function fence ordering (e.g. the engine persisting the slot
header in ``_commit`` before calling ``_write_commit_record``) is out
of lexical reach.  In project mode the interprocedural PC010 owns the
"followed by a fence" half — it sees fences placed in callers and
``persist_many`` single-fence batches — so this rule then checks only
the intra-function slot-write-before-commit ordering and leaves the
rest to PC010.  Single-file runs keep both halves.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.static.astutils import (
    call_name,
    contains_call_named,
    iter_calls,
    iter_functions,
    mentions_name,
    position,
)
from repro.analysis.static.diagnostics import Diagnostic
from repro.analysis.static.rulebase import FileContext, Rule, register

#: Calls that act as a durability fence.
FENCE_CALLS = {"persist", "fsync", "fdatasync", "msync", "sfence", "sync"}

#: Batch APIs that persist every queued piece behind one covering fence:
#: ``persist_many`` (the pooled writer's batched submit+reap) and
#: ``persist_striped`` (the same barrier over a striped device, which
#: fences every stripe member).  PC010 treats a call to either as a
#: fence on the interprocedural path.
BATCHED_FENCE_CALLS = {"persist_many", "persist_striped"}

#: Markers identifying a write as targeting the commit record.
_COMMIT_MARKERS = ("encode_commit_record", "commit_offset")

#: Markers identifying a write as targeting slot data / headers.
_SLOT_MARKERS = ("encode_slot_header", "slot_offset", "payload_offset")


def _is_write(call: ast.Call) -> bool:
    return call_name(call) == "write"


def _targets_commit_record(call: ast.Call) -> bool:
    return any(
        contains_call_named(arg, "encode_commit_record")
        or mentions_name(arg, "commit_offset")
        for arg in call.args
    )


def _targets_slot(call: ast.Call) -> bool:
    return any(
        any(
            contains_call_named(arg, marker) or mentions_name(arg, marker)
            for marker in _SLOT_MARKERS
        )
        for arg in call.args
    )


@register
class UnfencedCommitRecord(Rule):
    rule_id = "PC004"
    title = "commit-record write without fence discipline"

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        for func in iter_functions(ctx.tree):
            yield from self._check_function(ctx, func)

    def _check_function(self, ctx, func) -> Iterable[Diagnostic]:
        calls: List[ast.Call] = sorted(iter_calls(func), key=position)
        commit_writes = [
            c for c in calls if _is_write(c) and _targets_commit_record(c)
        ]
        if not commit_writes:
            return
        fences = [c for c in calls if call_name(c) in FENCE_CALLS]
        slot_writes = [
            c
            for c in calls
            if _is_write(c)
            and not _targets_commit_record(c)
            and _targets_slot(c)
        ]
        for write in commit_writes:
            if not ctx.project_mode and not any(
                position(f) > position(write) for f in fences
            ):
                yield self.report(
                    ctx,
                    write,
                    "commit-record write is not followed by a fence/persist "
                    "call before the function exits",
                )
            for slot_write in slot_writes:
                if position(slot_write) < position(write) and not any(
                    position(slot_write) < position(f) < position(write)
                    for f in fences
                ):
                    yield self.report(
                        ctx,
                        write,
                        "commit-record write is not preceded by a fence for "
                        f"the slot write on line {slot_write.lineno}",
                    )
