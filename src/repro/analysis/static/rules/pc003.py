"""PC003: a ``begin()`` ticket must be committed or aborted on every path.

``engine.begin()`` reserves a counter and — more importantly — a free
slot.  A ticket that is never resolved leaks the slot forever; with
N+1 slots total, N leaked tickets deadlock every future checkpoint.
The rule tracks each ``name = <obj>.begin(...)`` assignment and
requires that every *normal* (non-exception) path through the rest of
the function either

* resolves the ticket — ``name.commit()`` / ``name.abort()``, or the
  ticket passed positionally to a ``commit``/``abort`` call — or
* lets the ticket escape (returned, yielded, stored, or passed to any
  other call), transferring ownership to the receiver.

Exception paths are exempt by design: the engine documents that a
crash mid-checkpoint must leave the ticket dangling, exactly as power
loss would (only clean aborts recycle the slot).
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from repro.analysis.static.astutils import (
    FUNCTION_NODES,
    call_name,
    iter_functions,
)
from repro.analysis.static.diagnostics import Diagnostic
from repro.analysis.static.rulebase import FileContext, Rule, register

_RESOLVE_NAMES = {"commit", "abort", "cancel", "release"}


def _is_begin_call(node: ast.expr) -> bool:
    return isinstance(node, ast.Call) and call_name(node) == "begin"


class _TicketUse:
    """Classify how a tracked name is used inside one subtree."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.resolves = False
        self.escapes = False

    def scan(self, node: ast.AST) -> "_TicketUse":
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                self._scan_call(child)
            elif isinstance(child, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = child.value
                if value is not None and self._mentions(value):
                    # Returning ticket.commit() is a resolve, handled by
                    # the Call branch; returning the bare ticket escapes.
                    if isinstance(value, ast.Name) and value.id == self.name:
                        self.escapes = True
            elif isinstance(child, ast.Assign):
                # Storing the ticket into an attribute/container hands
                # ownership to that structure.
                if (
                    isinstance(child.value, ast.Name)
                    and child.value.id == self.name
                ):
                    for target in child.targets:
                        if not isinstance(target, ast.Name):
                            self.escapes = True
        return self

    def _scan_call(self, call: ast.Call) -> None:
        func = call.func
        # name.commit() / name.abort()
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == self.name
            and func.attr in _RESOLVE_NAMES
        ):
            self.resolves = True
            return
        # store.commit(name) / store.abort(name)
        if call_name(call) in _RESOLVE_NAMES and any(
            isinstance(arg, ast.Name) and arg.id == self.name
            for arg in call.args
        ):
            self.resolves = True
            return
        # Ticket passed to anything else: ownership escapes.
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            if self._mentions(arg):
                self.escapes = True

    def _mentions(self, node: ast.AST) -> bool:
        return any(
            isinstance(child, ast.Name) and child.id == self.name
            for child in ast.walk(node)
        )


@register
class TicketNotResolved(Rule):
    rule_id = "PC003"
    title = "begin() ticket not committed/aborted on every path"

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        for func in iter_functions(ctx.tree):
            yield from self._check_function(ctx, func)

    def _check_function(self, ctx, func) -> Iterable[Diagnostic]:
        for index, stmt in enumerate(func.body):
            name = self._begin_assignment(stmt)
            if name is None:
                continue
            rest = func.body[index + 1 :]
            use = _TicketUse(name)
            for later in rest:
                use.scan(later)
            if use.escapes:
                continue
            if not use.resolves:
                yield self.report(
                    ctx,
                    stmt,
                    f"ticket '{name}' from begin() is never committed "
                    f"or aborted in this function",
                )
                continue
            if not self._guarantees(rest, name):
                yield self.report(
                    ctx,
                    stmt,
                    f"ticket '{name}' from begin() is not committed or "
                    f"aborted on every normal path through this function",
                )

    @staticmethod
    def _begin_assignment(stmt: ast.stmt) -> Optional[str]:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and _is_begin_call(stmt.value)
        ):
            return stmt.targets[0].id
        return None

    # ------------------------------------------------------------------
    # path analysis

    def _guarantees(self, stmts: List[ast.stmt], name: str) -> bool:
        """Does every normal completion of ``stmts`` resolve the ticket?"""
        for stmt in stmts:
            if self._stmt_guarantees(stmt, name):
                return True
            # A bare return before any resolve ends a normal path
            # without resolving: the remaining statements cannot help.
            if isinstance(stmt, ast.Return):
                return False
        return False

    def _stmt_guarantees(self, stmt: ast.stmt, name: str) -> bool:
        if isinstance(stmt, ast.Raise):
            return True  # exception path: exempt by design
        if isinstance(stmt, (ast.Expr, ast.Assign, ast.AugAssign, ast.Return)):
            use = _TicketUse(name).scan(stmt)
            return use.resolves or use.escapes
        if isinstance(stmt, ast.If):
            return (
                bool(stmt.orelse)
                and self._guarantees(stmt.body, name)
                and self._guarantees(stmt.orelse, name)
            )
        if isinstance(stmt, ast.With):
            return self._guarantees(stmt.body, name)
        if isinstance(stmt, ast.While):
            test = stmt.test
            if isinstance(test, ast.Constant) and test.value:
                # ``while True`` only exits via break/return/raise; treat
                # a resolving body as resolving the loop.
                return self._guarantees(stmt.body, name)
            return False
        if isinstance(stmt, ast.Try):
            if self._guarantees(stmt.finalbody, name):
                return True
            normal = self._guarantees(list(stmt.body) + list(stmt.orelse), name)
            if not normal:
                return False
            # Every handler must resolve too, or visibly re-raise —
            # otherwise a swallowed exception becomes an unresolved
            # normal path.
            for handler in stmt.handlers:
                if self._guarantees(handler.body, name):
                    continue
                if any(isinstance(s, (ast.Raise, ast.Return)) for s in
                       handler.body):
                    continue
                return False
            return True
        return False
