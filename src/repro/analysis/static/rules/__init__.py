"""Rule modules; importing this package registers every rule."""

from repro.analysis.static.rules.pc001 import BlockingCallUnderLock
from repro.analysis.static.rules.pc002 import UnguardedSharedMutation
from repro.analysis.static.rules.pc003 import TicketNotResolved
from repro.analysis.static.rules.pc004 import UnfencedCommitRecord
from repro.analysis.static.rules.pc005 import SwallowedEngineError
from repro.analysis.static.rules.pc006 import MagicNumberBackoff
from repro.analysis.static.rules.pc007 import HandRolledTelemetry
from repro.analysis.static.rules.pc008 import PayloadCopyOnHotPath
from repro.analysis.static.rules.pc009 import LockOrderCycle
from repro.analysis.static.rules.pc010 import InterprocedurallyUnfencedCommit
from repro.analysis.static.rules.pc011 import EscapingZeroCopyView

__all__ = [
    "BlockingCallUnderLock",
    "UnguardedSharedMutation",
    "TicketNotResolved",
    "UnfencedCommitRecord",
    "SwallowedEngineError",
    "MagicNumberBackoff",
    "HandRolledTelemetry",
    "PayloadCopyOnHotPath",
    "LockOrderCycle",
    "InterprocedurallyUnfencedCommit",
    "EscapingZeroCopyView",
]
