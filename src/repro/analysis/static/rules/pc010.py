"""PC010: interprocedural fence coverage for commit-record writes.

PC004's lexical check stops at the function boundary, which forces the
fence into the same function as the write even when the design puts it
one level up (the engine persists after ``_write_commit_record``
returns; the batcher coalesces many commits under one
``persist_many``).  This rule lifts the check to the whole program:

a commit-record write is *covered* when, on **every** CFG path from
the write, a fence executes before control leaves the program's reach
— in the writing function itself, in a callee that always fences
(computed as a fixed point, so helpers like ``_barrier()`` count), or
in a transitive caller after the call returns.  ``persist_many``
counts as a fence: PR 4's batching contract is one fence for the whole
batch, and that is precisely the pattern PC004 could not see.

``raise`` paths carry no obligation (recovery re-derives state from
what *was* persisted), and a function nobody calls must fence locally
— a public entry point cannot outsource its durability.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from repro.analysis.static.astutils import call_name, position
from repro.analysis.static.callgraph import CallGraph, CallSite, get_callgraph
from repro.analysis.static.cfg import all_paths_reach
from repro.analysis.static.diagnostics import Diagnostic
from repro.analysis.static.projectindex import FunctionInfo
from repro.analysis.static.rulebase import ProjectRule, register
from repro.analysis.static.rules.pc004 import (
    BATCHED_FENCE_CALLS,
    FENCE_CALLS,
    _is_write,
    _targets_commit_record,
)

#: Interprocedural fences: PC004's set plus the single-fence batch APIs
#: (``persist_many``, ``persist_striped``).
INTER_FENCE_CALLS = FENCE_CALLS | BATCHED_FENCE_CALLS

#: How many caller levels may supply the covering fence.
MAX_CALLER_DEPTH = 4


@register
class InterprocedurallyUnfencedCommit(ProjectRule):
    rule_id = "PC010"
    title = "commit-record write unfenced on some interprocedural path"

    def check_project(self, index) -> Iterable[Diagnostic]:
        graph = get_callgraph(index)
        fencing = _always_fencing(index, graph)
        for finfo in index.functions.values():
            for write in self._commit_writes(finfo):
                if self._covered_after(finfo, write, graph, fencing):
                    continue
                chain = self._caller_chain(
                    index, graph, fencing, finfo.qualname, set(), 0
                )
                if chain is None:
                    continue
                yield self.report_at(
                    finfo.path,
                    write.lineno,
                    write.col_offset + 1,
                    self._message(finfo, chain),
                )

    # ------------------------------------------------------------------

    def _commit_writes(self, finfo: FunctionInfo) -> List[ast.Call]:
        writes = []
        cfg = finfo.cfg
        for node_id in range(len(cfg.statements)):
            for call in cfg.calls_in(node_id):
                if _is_write(call) and _targets_commit_record(call):
                    writes.append(call)
        return writes

    def _covered_after(
        self,
        finfo: FunctionInfo,
        target: ast.Call,
        graph: CallGraph,
        fencing: Set[str],
    ) -> bool:
        """Does every path after ``target`` fence before leaving ``finfo``?"""
        cfg = finfo.cfg
        node_id = cfg.node_of(target)
        if node_id is None:
            # Inside a nested def or comprehension the CFG does not
            # model; do not guess a violation.
            return True
        for later in cfg.calls_in(node_id):
            if position(later) > position(target) and _is_fence(
                later, finfo, graph, fencing
            ):
                return True
        return all_paths_reach(
            cfg,
            lambda nid: _node_fences(cfg, nid, finfo, graph, fencing),
            cfg.succ[node_id],
        )

    def _caller_chain(
        self,
        index,
        graph: CallGraph,
        fencing: Set[str],
        qualname: str,
        seen: Set[str],
        depth: int,
    ) -> Optional[List[CallSite]]:
        """A witness chain of callers with no covering fence, or None.

        None means every caller path fences after the call returns.  An
        empty list means the function has no callers at all (it must
        fence locally and does not).
        """
        if depth > MAX_CALLER_DEPTH:
            return []
        callers = graph.callers_of(qualname)
        if not callers:
            return []
        for site in callers:
            caller = index.functions.get(site.caller)
            if caller is None:
                return [site]
            if isinstance(site.call, ast.Call) and self._covered_after(
                caller, site.call, graph, fencing
            ):
                continue
            if site.caller in seen:
                continue  # recursion: some other path must cover it
            sub = self._caller_chain(
                index, graph, fencing, site.caller, seen | {site.caller}, depth + 1
            )
            if sub is not None:
                return [site] + sub
        return None

    def _message(self, finfo: FunctionInfo, chain: List[CallSite]) -> str:
        base = (
            "commit-record write can complete without a covering fence: "
            f"no fence (or persist_many batch) on every path out of "
            f"'{finfo.name}'"
        )
        if not chain:
            return base + " and no caller supplies one"
        hops = ", then ".join(
            f"'{site.caller.split('.')[-1]}' ({site.path}:{site.lineno})"
            for site in chain
        )
        return base + f"; unfenced call path via {hops}"


# ----------------------------------------------------------------------


def _is_fence(
    call: ast.Call, finfo: FunctionInfo, graph: CallGraph, fencing: Set[str]
) -> bool:
    name = call_name(call)
    if name in INTER_FENCE_CALLS:
        return True
    return any(
        callee in fencing for callee, _ in graph.resolve(finfo, call)
    )


def _node_fences(cfg, node_id, finfo, graph, fencing) -> bool:
    return any(
        _is_fence(call, finfo, graph, fencing)
        for call in cfg.calls_in(node_id)
    )


def _always_fencing(index, graph: CallGraph) -> Set[str]:
    """Functions guaranteed to fence on every normal-exit path.

    Least fixed point starting from "nothing fences": a function joins
    the set when every CFG path from entry to exit crosses a direct
    fence call or a call to a function already in the set.  Seeded by
    the direct calls, grown until stable — so ``_barrier()`` wrapping
    ``device.persist()`` counts, and so does a wrapper around the
    wrapper.
    """
    fencing: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for qualname, finfo in index.functions.items():
            if qualname in fencing:
                continue
            cfg = finfo.cfg
            if not cfg.statements:
                continue
            if all_paths_reach(
                cfg,
                lambda nid, f=finfo, c=cfg: _node_fences(
                    c, nid, f, graph, fencing
                ),
                cfg.entry,
            ):
                fencing.add(qualname)
                changed = True
    return fencing
