"""PC009: lock-order cycles across the whole program.

Two locks acquired in opposite orders on different code paths can
deadlock: thread 1 holds A and wants B while thread 2 holds B and
wants A.  The checkpointer is exactly the kind of code where this
bites — the engine, coordinator, barrier, and writer each own a lock
and call across module boundaries while holding theirs.

This rule builds the global lock-order graph (every ``with <lock>:``
region, plus locks acquired transitively by functions the region
calls) and reports each simple cycle once, naming both acquisition
sites and the call path that connects them.  The diagnostic anchors at
the first edge's acquisition/call site so a justified ordering can be
suppressed exactly where it happens.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.static.callgraph import get_callgraph
from repro.analysis.static.diagnostics import Diagnostic
from repro.analysis.static.lockgraph import LockOrderGraph, short_lock
from repro.analysis.static.rulebase import ProjectRule, register


def _short_func(qualname: str) -> str:
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else qualname


@register
class LockOrderCycle(ProjectRule):
    rule_id = "PC009"
    title = "lock-order cycle (potential ABBA deadlock)"

    def check_project(self, index) -> Iterable[Diagnostic]:
        graph = get_callgraph(index)
        lock_graph = index.derived.get("lockgraph")
        if not isinstance(lock_graph, LockOrderGraph):
            lock_graph = LockOrderGraph(index, graph)
            index.derived["lockgraph"] = lock_graph
        for cycle in lock_graph.cycles():
            locks = " -> ".join(
                short_lock(edge.holder) for edge in cycle
            ) + f" -> {short_lock(cycle[0].holder)}"
            legs = []
            for edge in cycle:
                leg = (
                    f"'{short_lock(edge.holder)}' held in "
                    f"{_short_func(edge.func)} while "
                    f"'{short_lock(edge.acquired)}' is acquired at "
                    f"{edge.acquired_at[0]}:{edge.acquired_at[1]}"
                )
                if edge.via:
                    leg += " via " + " -> ".join(
                        _short_func(q) for q in edge.via
                    )
                legs.append(leg)
            first = cycle[0]
            yield self.report_at(
                first.path,
                first.line,
                1,
                f"lock-order cycle {locks}: " + "; ".join(legs),
            )
