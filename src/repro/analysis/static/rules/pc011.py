"""PC011: zero-copy views must not escape their buffer's checkout.

The persist pipeline's zero-copy contract (PR 3/4) is that a
``memoryview``/``PinnedBuffer.view()`` over a pooled staging buffer is
a *loan*: valid only between the pool ``acquire`` and the matching
``release``.  A view that leaks past the release aliases memory the
pool will hand to the next checkpoint — the corruption is silent and
appears as a torn or cross-contaminated checkpoint long after the
buggy frame returned.

The flow analysis lives in :mod:`repro.analysis.static.escape`; this
rule runs it over every indexed function and reports each escape:
views returned while the function releases the buffer (including the
``try: return buf.view()`` / ``finally: release`` shape), views stored
on ``self``, views captured by nested functions or thread-spawn calls,
and views read on a CFG path after the release executed.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.static.diagnostics import Diagnostic
from repro.analysis.static.escape import analyze_function
from repro.analysis.static.rulebase import ProjectRule, register


@register
class EscapingZeroCopyView(ProjectRule):
    rule_id = "PC011"
    title = "zero-copy view escapes its pooled buffer's lifetime"

    def check_project(self, index) -> Iterable[Diagnostic]:
        for finfo in index.functions.values():
            for finding in analyze_function(finfo.node):
                yield self.report_at(
                    finfo.path,
                    finding.line,
                    finding.col + 1,
                    f"{finding.detail} [{finding.kind}]",
                )
