"""PC001: blocking call while a lock is held.

The engine's atomic emulation promises its locks are "never held
across user code" — a ``time.sleep``, file I/O, or an ``msync``-style
persist inside a ``with <lock>:`` block breaks that promise and turns
every concurrent checkpoint into a convoy.  Acquiring a *second* lock
inside a held one is flagged too (lock-ordering hazard).

``Condition.wait`` is deliberately not in the blocking set: it
releases the lock while waiting, which is the whole point of the
pattern the freelist uses.
"""

from __future__ import annotations

import ast
from typing import Iterable, Set

from repro.analysis.static.astutils import call_name, iter_functions
from repro.analysis.static.diagnostics import Diagnostic
from repro.analysis.static.lockutils import iter_lock_regions, with_lock_names
from repro.analysis.static.rulebase import FileContext, Rule, register

#: Terminal call names that block the calling thread.
BLOCKING_CALLS: Set[str] = {
    "sleep",
    "open",
    "fsync",
    "fdatasync",
    "msync",
    "persist",
    "sfence",
    "flush",
    "join",
    "acquire",
    "dequeue_blocking",
    "result",
}


@register
class BlockingCallUnderLock(Rule):
    rule_id = "PC001"
    title = "blocking call while a lock is held"

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        for func in iter_functions(ctx.tree):
            for region, lock_names in iter_lock_regions(func):
                yield from self._scan_region(ctx, region, lock_names)

    def _scan_region(
        self, ctx: FileContext, region: ast.With, lock_names: list
    ) -> Iterable[Diagnostic]:
        held = ", ".join(lock_names)
        for stmt in region.body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    name = call_name(node)
                    if name in BLOCKING_CALLS:
                        yield self.report(
                            ctx,
                            node,
                            f"blocking call '{name}' while lock "
                            f"'{held}' is held",
                        )
                elif isinstance(node, ast.With) and node is not region:
                    nested = with_lock_names(node)
                    if nested:
                        yield self.report(
                            ctx,
                            node,
                            f"acquires lock '{', '.join(nested)}' while "
                            f"lock '{held}' is held (ordering hazard)",
                        )
