"""PC002: lock-protected attribute mutated outside the lock.

For every class that owns a lock, the rule infers which instance
attributes that lock protects: any ``self.X`` written inside a
``with self.<lock>:`` block (outside ``__init__``) is considered
guarded state.  A write to the same attribute outside any lock region
is then a data race waiting for a scheduler to expose it — exactly the
class of bug the engine's invariants (monotone committed counter,
slot bookkeeping) cannot survive.

``__init__``/``__new__``/``__post_init__`` are exempt: the object is
not yet shared while it is being constructed.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set, Tuple

from repro.analysis.static.astutils import FUNCTION_NODES
from repro.analysis.static.diagnostics import Diagnostic
from repro.analysis.static.lockutils import (
    lock_attributes_of_class,
    with_lock_names,
)
from repro.analysis.static.rulebase import FileContext, Rule, register

_CONSTRUCTORS = {"__init__", "__new__", "__post_init__", "__init_subclass__"}


def _self_attr_writes(stmt: ast.stmt) -> List[Tuple[str, ast.AST]]:
    """(attribute, node) pairs for every ``self.X = ...`` style write."""
    writes: List[Tuple[str, ast.AST]] = []
    targets: List[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    for target in targets:
        node = target
        # Unwrap subscript stores: ``self._steps[i] = v`` mutates _steps.
        while isinstance(node, ast.Subscript):
            node = node.value
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            writes.append((node.attr, target))
    return writes


@register
class UnguardedSharedMutation(Rule):
    rule_id = "PC002"
    title = "lock-protected attribute mutated outside the lock"

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _check_class(
        self, ctx: FileContext, cls: ast.ClassDef
    ) -> Iterable[Diagnostic]:
        lock_attrs = lock_attributes_of_class(cls)
        if not lock_attrs:
            return
        guarded: Dict[str, List[ast.AST]] = {}
        unguarded: Dict[str, List[ast.AST]] = {}
        for method in cls.body:
            if not isinstance(method, FUNCTION_NODES):
                continue
            if method.name in _CONSTRUCTORS:
                continue
            self._collect(method.body, under_lock=False, guarded=guarded,
                          unguarded=unguarded)
        racy = set(guarded) & set(unguarded) - lock_attrs
        for attr in sorted(racy):
            for node in unguarded[attr]:
                yield self.report(
                    ctx,
                    node,
                    f"attribute 'self.{attr}' is written under a lock "
                    f"elsewhere in this class but mutated here without it",
                )

    def _collect(
        self,
        stmts: List[ast.stmt],
        under_lock: bool,
        guarded: Dict[str, List[ast.AST]],
        unguarded: Dict[str, List[ast.AST]],
    ) -> None:
        for stmt in stmts:
            for attr, node in _self_attr_writes(stmt):
                bucket = guarded if under_lock else unguarded
                bucket.setdefault(attr, []).append(node)
            if isinstance(stmt, ast.With):
                locked = under_lock or bool(with_lock_names(stmt))
                self._collect(stmt.body, locked, guarded, unguarded)
            elif isinstance(stmt, (ast.If, ast.While, ast.For)):
                self._collect(stmt.body, under_lock, guarded, unguarded)
                self._collect(stmt.orelse, under_lock, guarded, unguarded)
            elif isinstance(stmt, ast.Try):
                self._collect(stmt.body, under_lock, guarded, unguarded)
                for handler in stmt.handlers:
                    self._collect(handler.body, under_lock, guarded, unguarded)
                self._collect(stmt.orelse, under_lock, guarded, unguarded)
                self._collect(stmt.finalbody, under_lock, guarded, unguarded)
            # Nested function/class definitions are analysed separately.
