"""PC006: magic-number sleeps and backoffs.

A literal ``time.sleep(0.0001)`` buried in a spin loop is impossible
to audit or tune: the freelist busy-wait, retry backoffs and polling
intervals must come from named module-level constants (or config) so
one grep finds every latency knob in the system.  ``sleep(0)`` — an
explicit yield — is allowed.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.static.astutils import call_name
from repro.analysis.static.diagnostics import Diagnostic
from repro.analysis.static.rulebase import FileContext, Rule, register

_SLEEP_LIKE = {"sleep"}


@register
class MagicNumberBackoff(Rule):
    rule_id = "PC006"
    title = "magic-number sleep/backoff literal"

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if call_name(node) not in _SLEEP_LIKE or not node.args:
                continue
            arg = node.args[0]
            if (
                isinstance(arg, ast.Constant)
                and isinstance(arg.value, (int, float))
                and not isinstance(arg.value, bool)
                and arg.value != 0
            ):
                yield self.report(
                    ctx,
                    node,
                    f"magic-number sleep({arg.value!r}); lift the interval "
                    f"into a named constant or configuration parameter",
                )
