"""PC008: payload copies on the zero-copy persist hot path.

The persist pipeline threads buffer-protocol objects end to end: the
staging copy into the pinned DRAM buffer is the *one* intentional copy
per checkpoint, and everything between it and the device moves
memoryview slices.  Two patterns silently reintroduce copies:

* ``bytes(payload)`` — re-materializes the whole payload (the old
  ``BytesSource(bytes(state))`` double-copy);
* ``payload[lo:hi]`` on a ``bytes``/``bytearray``-typed local — slicing
  copies the range, which on the writer's share split meant one extra
  full-payload copy per persist.

The rule flags both for payload-carrying names in the hot-path modules
of ``repro/core/`` (engine, writer, orchestrator, chunking).  Views are
exempt: slicing a ``memoryview`` is O(1), so names like ``view`` stay
clean — normalize with :func:`repro.storage.device.as_view` first and
slice the view.  Intentional sites (e.g. a cold recovery read) carry a
``# pclint: disable=PC008`` suppression.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable

from repro.analysis.static.diagnostics import Diagnostic
from repro.analysis.static.rulebase import FileContext, Rule, register

#: Local/attribute names that carry checkpoint payload bytes.
PAYLOAD_NAMES = frozenset({"payload", "chunk", "data", "snapshot"})

#: Hot-path modules where a stray copy costs a payload's worth of DRAM
#: bandwidth per checkpoint.
HOT_MODULES = frozenset(
    {"engine.py", "writer.py", "orchestrator.py", "chunking.py"}
)


def _on_hot_path(path: str) -> bool:
    normalized = path.replace("\\", "/")
    return (
        "repro/core/" in normalized
        and os.path.basename(normalized) in HOT_MODULES
    )


def _payload_name(node: ast.expr) -> str:
    """The payload-ish name an expression refers to, or ``""``."""
    if isinstance(node, ast.Name) and node.id in PAYLOAD_NAMES:
        return node.id
    if isinstance(node, ast.Attribute) and node.attr in PAYLOAD_NAMES:
        return node.attr
    return ""


@register
class PayloadCopyOnHotPath(Rule):
    rule_id = "PC008"
    title = "payload copy on the zero-copy persist path"

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        if not _on_hot_path(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("bytes", "bytearray")
                and len(node.args) == 1
            ):
                name = _payload_name(node.args[0])
                if name:
                    yield self.report(
                        ctx,
                        node,
                        f"{node.func.id}({name}) materializes a full "
                        f"payload copy on the persist hot path: pass the "
                        f"buffer through as_view() and slice the view",
                    )
            elif isinstance(node, ast.Subscript) and isinstance(
                node.slice, ast.Slice
            ):
                name = _payload_name(node.value)
                if name:
                    yield self.report(
                        ctx,
                        node,
                        f"slicing {name}[...] copies the range when the "
                        f"payload is bytes/bytearray: slice a memoryview "
                        f"(as_view({name})[lo:hi]) instead",
                    )
