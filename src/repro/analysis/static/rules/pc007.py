"""PC007: hand-rolled telemetry in the checkpoint engine core.

The telemetry redesign routes all stall accounting and latency
measurement in ``repro/core/`` through the shared
:class:`~repro.obs.metrics.MetricsRegistry` (``registry.timer``,
``registry.inc``/``observe``) so every stall class lands on one
timeline with one clock.  Two legacy patterns defeat that:

* ``time.time()`` — wall-clock timestamps are not monotonic and drift
  against the registry's ``time.monotonic()`` base; and
* ``self.<something>_seconds += ...`` — a private stall accumulator
  invisible to ``snapshot()``/Prometheus exposition and racy unless the
  caller reinvents the registry's locking.

Both had real instances before the redesign (the engine's slot-wait
accumulator, the orchestrator's update-stall counter); this rule keeps
them from coming back.  Scope is ``repro/core/`` only — tests, examples
and the simulator may measure however they like.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.static.astutils import call_name
from repro.analysis.static.diagnostics import Diagnostic
from repro.analysis.static.rulebase import FileContext, Rule, register


def _in_core(path: str) -> bool:
    return "repro/core/" in path.replace("\\", "/")


@register
class HandRolledTelemetry(Rule):
    rule_id = "PC007"
    title = "hand-rolled telemetry in repro/core"

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        if not _in_core(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and call_name(node) == "time":
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "time"
                ):
                    yield self.report(
                        ctx,
                        node,
                        "time.time() in the engine core: use "
                        "time.monotonic() (or registry.timer) so "
                        "telemetry shares the registry's clock",
                    )
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, ast.Add
            ):
                target = node.target
                if isinstance(
                    target, ast.Attribute
                ) and target.attr.endswith("_seconds"):
                    yield self.report(
                        ctx,
                        node,
                        f"hand-rolled stall accumulator "
                        f"'{target.attr} +=': route the measurement "
                        f"through MetricsRegistry.inc/observe instead",
                    )
