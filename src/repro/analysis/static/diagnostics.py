"""Diagnostic records produced by lint rules."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.Enum):
    """How bad a finding is; both levels fail the build today."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: a rule violation anchored to a file position.

    Ordering is (path, line, col, rule) so reports are stable and
    grouped by file regardless of rule execution order.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    severity: Severity = Severity.ERROR

    def format(self) -> str:
        """Render as the conventional ``path:line:col: RULE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_dict(self) -> dict:
        """JSON-friendly representation for the machine reporter."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
            "severity": self.severity.value,
        }


#: Pseudo-rule id used for files that fail to parse.
SYNTAX_RULE_ID = "PC000"
