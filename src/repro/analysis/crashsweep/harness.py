"""The crash-consistency sweep harness.

Given a workload and a fault mode, the harness

1. runs the workload once uninstrumented to count its mutating device
   operations (the crash-point space) and, for offset-targeted sweeps,
   to enumerate the matching occurrences;
2. replays the workload once per crash point on a fresh device, with a
   :class:`~repro.storage.faults.CrashPointDevice` injecting power loss
   at exactly that point (optionally with torn writes and randomized
   cache-line survival);
3. recovers after each crash and checks the §4.1 guarantee plus counter
   monotonicity against the run's own journal of pre-crash commits;
4. collects every violation with a self-contained reproducer command.

Determinism: the per-point RNG is seeded from ``(seed, point)``, so a
reported reproducer replays the identical torn-write cut and cache-line
survival pattern.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.crashsweep.workloads import (
    DEFAULT_SLOTS,
    DEFAULT_WORLD,
    WORKLOADS,
    Workload,
    WorkloadSpec,
)
from repro.core.layout import SUPERBLOCK_SIZE
from repro.core.meta import RECORD_SIZE
from repro.errors import EngineError, InvariantViolationError
from repro.storage.faults import (
    CrashPointDevice,
    DeviceOp,
    OffsetCrashSchedule,
    OpCountSchedule,
)
from repro.storage.pmem import SimulatedPMEM
from repro.storage.ssd import InMemorySSD

#: Byte range of the commit record — the target of ``--target
#: commit-record`` sweeps ("crash during the commit-record persist").
COMMIT_RECORD_RANGE = (SUPERBLOCK_SIZE, SUPERBLOCK_SIZE + RECORD_SIZE)

_DEVICE_CLASSES = {"ssd": InMemorySSD, "pmem": SimulatedPMEM}


@dataclass(frozen=True)
class CrashSweepConfig:
    """Everything one sweep needs; defaults give a fast, meaningful run."""

    workload: str = "engine"
    steps: int = 3
    num_slots: Optional[int] = None  #: None → the workload's default
    payload_capacity: int = 512
    writer_threads: int = 2
    chunk_size: int = 128
    num_chunks: int = 2
    device: str = "ssd"  #: "ssd" | "pmem"
    #: RNG seed for cache-line survival and torn-write cuts; ``None``
    #: drops every unpersisted byte deterministically.
    seed: Optional[int] = None
    torn_writes: bool = False
    #: Sweep every ``stride``-th crash point.
    stride: int = 1
    #: Cap on swept points (evenly subsampled); ``None`` sweeps all.
    max_points: Optional[int] = None
    #: ``None`` sweeps all ops; ``"commit-record"`` sweeps only ops
    #: touching the commit record.
    target: Optional[str] = None
    sanitize: bool = True
    barrier_timeout: float = 0.25
    #: Writer world size for multi-rank workloads; ``None`` → the
    #: workload's default (2 for ``distributed``, 4 for ``elastic``).
    world_size: Optional[int] = None

    def spec(self) -> WorkloadSpec:
        if self.workload not in WORKLOADS:
            raise EngineError(
                f"unknown workload {self.workload!r}; "
                f"choose from {sorted(WORKLOADS)}"
            )
        return WorkloadSpec(
            steps=self.steps,
            num_slots=self.num_slots or DEFAULT_SLOTS[self.workload],
            payload_capacity=self.payload_capacity,
            writer_threads=self.writer_threads,
            chunk_size=self.chunk_size,
            num_chunks=self.num_chunks,
            sanitize=self.sanitize,
            world_size=(
                self.world_size
                or DEFAULT_WORLD.get(self.workload, 2)
            ),
            barrier_timeout=self.barrier_timeout,
        )


@dataclass
class PointOutcome:
    """What happened at one crash point."""

    point: int
    descriptor: str
    crashed: bool
    acked_steps: List[int]
    recovered_step: Optional[int]
    recovered_source: str
    violations: List[str] = field(default_factory=list)
    reproducer: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "point": self.point,
            "descriptor": self.descriptor,
            "crashed": self.crashed,
            "acked_steps": self.acked_steps,
            "recovered_step": self.recovered_step,
            "recovered_source": self.recovered_source,
            "violations": self.violations,
            "reproducer": self.reproducer,
        }


@dataclass
class SweepReport:
    """Aggregate of a full sweep; rendered by ``crashsweep.report``."""

    config: CrashSweepConfig
    total_ops: int
    outcomes: List[PointOutcome]

    @property
    def violations(self) -> List[PointOutcome]:
        return [o for o in self.outcomes if o.violations]

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        from dataclasses import asdict

        return {
            "config": asdict(self.config),
            "total_ops": self.total_ops,
            "points_swept": len(self.outcomes),
            "ok": self.ok,
            "outcomes": [o.to_dict() for o in self.outcomes],
        }


def _make_device(
    config: CrashSweepConfig,
    spec: WorkloadSpec,
    schedule=None,
    rng: Optional[np.random.Generator] = None,
    record_ops: bool = False,
) -> CrashPointDevice:
    inner_cls = _DEVICE_CLASSES.get(config.device)
    if inner_cls is None:
        raise EngineError(
            f"unknown device {config.device!r}; "
            f"choose from {sorted(_DEVICE_CLASSES)}"
        )
    inner = inner_cls(capacity=spec.geometry().total_size)
    return CrashPointDevice(
        inner,
        schedule=schedule,
        rng=rng,
        torn_writes=config.torn_writes and rng is not None,
        record_ops=record_ops,
    )


def _rng_for(config: CrashSweepConfig, point: int) -> Optional[np.random.Generator]:
    seed = config.seed
    if seed is None and config.torn_writes:
        seed = 0  # torn cuts need an rng even in no-survival mode
    if seed is None:
        return None
    return np.random.default_rng([seed, point])


def count_crash_points(
    config: CrashSweepConfig,
) -> tuple[int, List[DeviceOp]]:
    """Uninstrumented run: total mutating ops + the full op trace."""
    spec = config.spec()
    workload = WORKLOADS[config.workload]
    device = _make_device(config, spec, record_ops=True)
    journal = workload.run(device, spec)
    if journal.crashed:
        raise EngineError(
            f"workload {config.workload!r} crashed without injection: "
            f"{journal.crash_error}"
        )
    return device.operations_performed, list(device.op_log or [])


def _schedule_for(config: CrashSweepConfig, point: int):
    if config.target is None:
        return OpCountSchedule(point), f"op {point}"
    lo, hi = COMMIT_RECORD_RANGE
    return (
        OffsetCrashSchedule(lo, hi, occurrence=point),
        f"commit-record occurrence {point}",
    )


def reproducer_command(config: CrashSweepConfig, point: int) -> str:
    """A self-contained CLI invocation replaying exactly this point."""
    spec = config.spec()
    parts = [
        "pccheck-repro crashsweep",
        f"--workload {config.workload}",
        f"--steps {config.steps}",
        f"--slots {spec.num_slots}",
        f"--payload-capacity {config.payload_capacity}",
        f"--writer-threads {config.writer_threads}",
        f"--device {config.device}",
        f"--point {point}",
    ]
    if config.world_size is not None:
        parts.append(f"--world-size {config.world_size}")
    if config.seed is not None:
        parts.append(f"--seed {config.seed}")
    if config.torn_writes:
        parts.append("--torn")
    if config.target is not None:
        parts.append(f"--target {config.target}")
    if not config.sanitize:
        parts.append("--no-sanitize")
    return " ".join(parts)


def run_point(config: CrashSweepConfig, point: int) -> PointOutcome:
    """Run the workload with a crash injected at ``point`` and validate
    recovery against the run's own journal."""
    spec = config.spec()
    workload: Workload = WORKLOADS[config.workload]
    schedule, descriptor = _schedule_for(config, point)
    rng = _rng_for(config, point)
    device = _make_device(config, spec, schedule=schedule, rng=rng)
    try:
        journal = workload.run(device, spec)
    except InvariantViolationError as exc:
        return PointOutcome(
            point=point,
            descriptor=descriptor,
            crashed=True,
            acked_steps=[],
            recovered_step=None,
            recovered_source="none",
            violations=[f"runtime sanitizer tripped: {exc}"],
            reproducer=reproducer_command(config, point),
        )
    except Exception as exc:  # noqa: BLE001 - any escape is a finding
        return PointOutcome(
            point=point,
            descriptor=descriptor,
            crashed=True,
            acked_steps=[],
            recovered_step=None,
            recovered_source="none",
            violations=[
                f"workload raised {type(exc).__name__} instead of "
                f"handling the fault: {exc}"
            ],
            reproducer=reproducer_command(config, point),
        )
    recovery = workload.validate_recovery(device, spec, journal)
    outcome = PointOutcome(
        point=point,
        descriptor=descriptor,
        crashed=journal.crashed,
        acked_steps=list(journal.acked_steps),
        recovered_step=recovery.recovered_step,
        recovered_source=recovery.source,
        violations=recovery.violations,
    )
    if outcome.violations:
        outcome.reproducer = reproducer_command(config, point)
    return outcome


def _select_points(
    config: CrashSweepConfig, total_ops: int, op_log: Sequence[DeviceOp]
) -> List[int]:
    if config.target is None:
        # Point == total_ops sweeps "crash immediately after the run" —
        # the schedule never fires, validate_recovery powers off at the
        # end instead.
        points = list(range(0, total_ops + 1, max(1, config.stride)))
    else:
        lo, hi = COMMIT_RECORD_RANGE
        occurrences = sum(1 for op in op_log if op.touches(lo, hi))
        points = list(range(0, occurrences, max(1, config.stride)))
    if config.max_points is not None and len(points) > config.max_points:
        step = math.ceil(len(points) / config.max_points)
        points = points[::step]
    return points


def sweep(config: CrashSweepConfig, progress=None) -> SweepReport:
    """Sweep every selected crash point; returns the aggregate report.

    ``progress(done, total)`` is invoked after each point when given.
    """
    total_ops, op_log = count_crash_points(config)
    points = _select_points(config, total_ops, op_log)
    outcomes: List[PointOutcome] = []
    for index, point in enumerate(points):
        outcomes.append(run_point(config, point))
        if progress is not None:
            progress(index + 1, len(points))
    return SweepReport(config=config, total_ops=total_ops, outcomes=outcomes)
