"""Crash-consistency sweep subsystem (``pccheck-repro crashsweep``).

Sweeps an injected power-loss fault across every device operation of a
configurable checkpointing workload — bare engine, streaming tickets,
the full orchestrator pipeline, or multi-rank distributed — recovers
after each crash, and asserts the §4.1 guarantee (at least one valid
checkpoint, recovery finds the newest committed one) plus counter
monotonicity and failure-path resource conservation.
"""

from repro.analysis.crashsweep.harness import (
    COMMIT_RECORD_RANGE,
    CrashSweepConfig,
    PointOutcome,
    SweepReport,
    count_crash_points,
    reproducer_command,
    run_point,
    sweep,
)
from repro.analysis.crashsweep.report import (
    render_json,
    render_point,
    render_text,
)
from repro.analysis.crashsweep.workloads import (
    DEFAULT_SLOTS,
    WORKLOADS,
    RecoveryOutcome,
    RunJournal,
    Workload,
    WorkloadSpec,
    payload_for,
)

__all__ = [
    "COMMIT_RECORD_RANGE",
    "CrashSweepConfig",
    "DEFAULT_SLOTS",
    "PointOutcome",
    "RecoveryOutcome",
    "RunJournal",
    "SweepReport",
    "WORKLOADS",
    "Workload",
    "WorkloadSpec",
    "count_crash_points",
    "payload_for",
    "render_json",
    "render_point",
    "render_text",
    "reproducer_command",
    "run_point",
    "sweep",
]
