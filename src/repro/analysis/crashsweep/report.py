"""Rendering for crash-sweep reports: human text and machine JSON."""

from __future__ import annotations

import json
from collections import Counter

from repro.analysis.crashsweep.harness import SweepReport


def render_text(report: SweepReport) -> str:
    """Compact human-readable summary, violations with reproducers."""
    config = report.config
    spec = config.spec()
    lines = [
        "crashsweep · workload={} steps={} slots={} device={} "
        "writer-threads={} torn={} seed={}".format(
            config.workload,
            config.steps,
            spec.num_slots,
            config.device,
            config.writer_threads,
            "yes" if config.torn_writes else "no",
            config.seed if config.seed is not None else "-",
        )
    ]
    space = (
        f"{report.total_ops} mutating ops"
        if config.target is None
        else f"ops touching the {config.target}"
    )
    lines.append(
        f"swept {len(report.outcomes)} crash points over {space}"
        + (f" (stride {config.stride})" if config.stride > 1 else "")
    )
    crashed = sum(1 for o in report.outcomes if o.crashed)
    lines.append(
        f"  crashed mid-run: {crashed} · ran to completion: "
        f"{len(report.outcomes) - crashed}"
    )
    sources = Counter(o.recovered_source for o in report.outcomes)
    lines.append(
        "  recovered via "
        + " · ".join(f"{name}: {count}" for name, count in sorted(sources.items()))
    )
    if report.ok:
        lines.append("violations: 0")
        lines.append(
            "OK — the §4.1 guarantee and counter monotonicity held at "
            "every crash point"
        )
    else:
        lines.append(f"violations: {len(report.violations)}")
        for outcome in report.violations:
            lines.append(f"  FAIL at {outcome.descriptor}:")
            for violation in outcome.violations:
                lines.append(f"    - {violation}")
            lines.append(f"    reproduce: {outcome.reproducer}")
    return "\n".join(lines)


def render_json(report: SweepReport) -> str:
    """Full machine-readable report (one JSON document)."""
    return json.dumps(report.to_dict(), indent=2, sort_keys=True)


def render_point(outcome) -> str:
    """Verbose single-point rendering (the ``--point`` reproducer path)."""
    lines = [
        f"crash point {outcome.point} ({outcome.descriptor})",
        f"  crashed mid-run : {'yes' if outcome.crashed else 'no'}",
        f"  acked steps     : {outcome.acked_steps or '—'}",
        f"  recovered       : step {outcome.recovered_step} "
        f"via {outcome.recovered_source}",
    ]
    if outcome.violations:
        lines.append("  VIOLATIONS:")
        for violation in outcome.violations:
            lines.append(f"    - {violation}")
    else:
        lines.append("  invariants held")
    return "\n".join(lines)
