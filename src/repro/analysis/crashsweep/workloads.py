"""Workloads the crash-consistency sweep drives.

Each workload runs a small but representative checkpointing scenario
against a fault-injecting device and keeps a *journal* of every
checkpoint whose commit returned before the crash — the durability
promises the crash is not allowed to break.  After the (possibly
injected) crash, :meth:`Workload.validate_recovery` restarts from the
durable image and asserts the §4.1 guarantee:

* every acknowledged checkpoint survives — recovery finds a checkpoint
  at least as new as the newest acknowledged step;
* the committed counter never regresses below an acknowledged counter;
* whatever is recovered is byte-exact (no torn/corrupt payload ever
  validates);
* resources are conserved on the failure path: the DRAM pool is whole
  again after the pipelines died, and a completed run returns every slot
  but the committed one to the free queue (engine invariant 4).

Seven workloads cover the stack bottom-up: ``engine`` (one-shot
``checkpoint()`` calls), ``streaming`` (interleaved ticket sessions,
exercising the superseded path deterministically), ``orchestrator``
(the full capture/persist pipeline with ≥3 concurrent checkpoints),
``distributed`` (multi-rank engines behind the rank-0 barrier, crashing
one rank's device), ``elastic`` (the distributed workload writing
*shards of one global state*, whose recovery is additionally
re-partitioned onto smaller and larger worlds and must reassemble
bit-identically — ROADMAP item 4's acceptance bar), ``striped``
(one-shot checkpoints through a 3-member ``StripedDevice`` with the
fault-injecting device as member 0, so torn stripes, crashes between
stripe fences, and torn stripe manifests are all swept — recovery must
be bit-identical or a typed error, never a silently short payload),
and ``tiered`` (one-shot checkpoints on a hot device with an async
demotion policy copying committed checkpoints to a warm SSD and a
remote object store — power failing mid-demotion at every crash point
and proving the commit record never depends on anything but the hot
tier).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.distributed import (
    CheckpointBarrier,
    DistributedCoordinator,
    DistributedWorker,
    recover_consistent,
)

#: Poll cadence while waiting for settled rounds to release their held
#: slots — settlement races the waiters waking, so the invariant check
#: retries briefly instead of declaring a leak on the first look.
SETTLE_POLL_SECONDS = 0.005
from repro.core.engine import CheckpointEngine
from repro.core.layout import DeviceLayout, Geometry
from repro.core.meta import RECORD_SIZE
from repro.core.orchestrator import PCcheckOrchestrator
from repro.core.recovery import recover_tiered, try_recover
from repro.core.sharding import shard_payload, reassemble
from repro.core.snapshot import BytesSource
from repro.errors import (
    CorruptCheckpointError,
    CrashedDeviceError,
    DistributedError,
    EngineClosedError,
    LayoutError,
    NoCheckpointError,
    PCcheckError,
)
from repro.storage.dram import DRAMBufferPool
from repro.storage.faults import CrashPointDevice
from repro.storage.remote import RemoteStore
from repro.storage.ssd import InMemorySSD
from repro.storage.striped import StripedDevice
from repro.storage.tiering import TieredDevice, TierPlan, TierPolicy

#: Upper bound on waiting for a checkpoint handle after a crash; a hit
#: means the failure paths stopped terminating and is itself a violation.
HANDLE_WAIT_SECONDS: float = 30.0


@dataclass(frozen=True)
class WorkloadSpec:
    """Static parameters of one sweep's workload runs."""

    steps: int = 3
    num_slots: int = 3
    payload_capacity: int = 512
    writer_threads: int = 2
    chunk_size: int = 128
    num_chunks: int = 2
    sanitize: bool = True
    world_size: int = 2
    barrier_timeout: float = 0.25
    #: Reader worlds the elastic workload re-partitions recovery onto.
    elastic_readers: tuple = (2, 8)

    @property
    def slot_size(self) -> int:
        return self.payload_capacity + RECORD_SIZE

    def geometry(self) -> Geometry:
        return Geometry(num_slots=self.num_slots, slot_size=self.slot_size)


@dataclass
class RunJournal:
    """Everything a run promised (or leaked) before the crash."""

    #: Steps whose checkpoint committed and whose call returned.
    acked_steps: List[int] = field(default_factory=list)
    #: Engine counters of those commits (rank 0 in distributed runs).
    acked_counters: List[int] = field(default_factory=list)
    crashed: bool = False
    crash_error: Optional[str] = None
    #: Failure-path resource leaks the workload itself detected.
    violations: List[str] = field(default_factory=list)
    #: Workload-specific extras (e.g. peer devices of a distributed run).
    aux: Dict[str, object] = field(default_factory=dict)

    def ack(self, step: int, counter: int) -> None:
        self.acked_steps.append(step)
        self.acked_counters.append(counter)


@dataclass
class RecoveryOutcome:
    """Post-crash recovery result plus any invariant violations."""

    recovered_step: Optional[int]
    source: str  #: "commit-record" | "slot-scan" | "distributed" | "none"
    violations: List[str]


def payload_for(step: int, capacity: int, rank: int = 0) -> bytes:
    """Deterministic per-(rank, step) payload with a step-varying length,
    so truncated or cross-slot reads can never pass validation."""
    pattern = f"r{rank:02d}s{step:06d};".encode()
    length = max(1, capacity - (step % 5))
    reps = length // len(pattern) + 1
    return (pattern * reps)[:length]


class Workload:
    """Base: single-device workloads share journal-vs-recovery checking."""

    name = "abstract"
    description = ""

    def run(self, device: CrashPointDevice, spec: WorkloadSpec) -> RunJournal:
        raise NotImplementedError

    def expected_payload(
        self, spec: WorkloadSpec, step: int, rank: int = 0
    ) -> bytes:
        return payload_for(step, spec.payload_capacity, rank=rank)

    # ------------------------------------------------------------------
    # §4.1 validation

    def validate_recovery(
        self, device: CrashPointDevice, spec: WorkloadSpec, journal: RunJournal
    ) -> RecoveryOutcome:
        violations = list(journal.violations)
        # Power loss at the sweep point — or, for runs the schedule never
        # interrupted, immediately after the run: either way every
        # unpersisted byte is gone before recovery looks.
        if not device.inner.crashed:
            device.inner.crash()
        device.inner.recover()
        try:
            layout = DeviceLayout.open(device.inner)
        except LayoutError:
            if journal.acked_steps:
                violations.append(
                    "region unopenable after crash although "
                    f"steps {journal.acked_steps} were acknowledged"
                )
            return RecoveryOutcome(None, "none", violations)
        return self._recovery_from_layout(layout, spec, journal, violations)

    def _recovery_from_layout(
        self,
        layout: DeviceLayout,
        spec: WorkloadSpec,
        journal: RunJournal,
        violations: List[str],
    ) -> RecoveryOutcome:
        """Shared tail of §4.1 validation once a layout opened: recover,
        check ack/counter monotonicity, check the payload byte-exactly."""
        recovered = try_recover(layout)
        if journal.acked_steps:
            newest = max(journal.acked_steps)
            if recovered is None:
                violations.append(
                    f"acknowledged step {newest} lost: nothing recovered"
                )
            else:
                if recovered.meta.step < newest:
                    violations.append(
                        f"recovery regressed to step {recovered.meta.step} "
                        f"< acknowledged {newest}"
                    )
                if recovered.meta.counter < max(journal.acked_counters):
                    violations.append(
                        f"committed counter regressed to "
                        f"{recovered.meta.counter} < acknowledged "
                        f"{max(journal.acked_counters)}"
                    )
        if recovered is None:
            return RecoveryOutcome(None, "none", violations)
        expected = self.expected_payload(spec, recovered.meta.step)
        if recovered.payload != expected:
            violations.append(
                f"recovered payload for step {recovered.meta.step} is "
                f"corrupt ({len(recovered.payload)} bytes, CRC passed but "
                "content differs from what the workload wrote)"
            )
        return RecoveryOutcome(recovered.meta.step, recovered.source, violations)

    # ------------------------------------------------------------------
    # helpers

    def _build_engine(
        self, device: CrashPointDevice, spec: WorkloadSpec
    ) -> CheckpointEngine:
        layout = DeviceLayout.format(
            device, num_slots=spec.num_slots, slot_size=spec.slot_size
        )
        return CheckpointEngine(
            layout,
            writer_threads=spec.writer_threads,
            sanitize=spec.sanitize,
        )

    def _check_slot_conservation(
        self, engine: CheckpointEngine, spec: WorkloadSpec, journal: RunJournal
    ) -> None:
        """Invariant 4 at quiescence: a completed run holds back exactly
        the committed slot."""
        if journal.crashed:
            return  # dangling tickets are legitimate after power loss
        expected = spec.num_slots - (1 if journal.acked_steps else 0)
        if engine.free_slots != expected:
            journal.violations.append(
                f"slot leak: {engine.free_slots} free of {spec.num_slots} "
                f"after a completed run (expected {expected})"
            )


class EngineOneShotWorkload(Workload):
    """Sequential ``engine.checkpoint()`` calls — Listing 1 end to end."""

    name = "engine"
    description = "one-shot checkpoint() calls on the bare engine"

    def run(self, device: CrashPointDevice, spec: WorkloadSpec) -> RunJournal:
        journal = RunJournal()
        try:
            engine = self._build_engine(device, spec)
            for step in range(1, spec.steps + 1):
                result = engine.checkpoint(
                    self.expected_payload(spec, step), step=step
                )
                if result.committed:
                    journal.ack(step, result.counter)
        except CrashedDeviceError as exc:
            journal.crashed = True
            journal.crash_error = str(exc)
            return journal
        self._check_slot_conservation(engine, spec, journal)
        return journal


class StreamingTicketWorkload(Workload):
    """Interleaved ``begin``/``write_chunk``/``commit`` ticket pairs.

    Commits each pair in reverse order, so every odd ticket exercises the
    superseded path (Listing 1 lines 29–31) deterministically.
    """

    name = "streaming"
    description = "interleaved streaming tickets, deterministic supersede"

    def run(self, device: CrashPointDevice, spec: WorkloadSpec) -> RunJournal:
        journal = RunJournal()
        try:
            engine = self._build_engine(device, spec)
            step = 1
            while step <= spec.steps:
                first = engine.begin(step=step)
                second = (
                    engine.begin(step=step + 1)
                    if step + 1 <= spec.steps
                    else None
                )
                for ticket in (first, second):
                    if ticket is None:
                        continue
                    payload = self.expected_payload(spec, ticket.step)
                    third = max(1, len(payload) // 3)
                    for lo in range(0, len(payload), third):
                        ticket.write_chunk(payload[lo : lo + third])
                # Reverse commit order: `first` holds the smaller counter
                # and gets superseded by `second`'s commit.
                for ticket in (second, first):
                    if ticket is None:
                        continue
                    result = ticket.commit()
                    if result.committed:
                        journal.ack(ticket.step, result.counter)
                step += 2
        except CrashedDeviceError as exc:
            journal.crashed = True
            journal.crash_error = str(exc)
            return journal
        self._check_slot_conservation(engine, spec, journal)
        return journal


class OrchestratorWorkload(Workload):
    """The full pipeline: concurrent capture/persist sessions over a
    shared DRAM pool, crash landing anywhere in any stage.

    Beyond the §4.1 check this asserts the failure-path resource
    contract: after ``drain``/``close`` the DRAM pool is whole again even
    when the persist stages died mid-checkpoint.
    """

    name = "orchestrator"
    description = "concurrent capture/persist pipelines over a DRAM pool"

    def run(self, device: CrashPointDevice, spec: WorkloadSpec) -> RunJournal:
        journal = RunJournal()
        try:
            engine = self._build_engine(device, spec)
        except CrashedDeviceError as exc:
            journal.crashed = True
            journal.crash_error = str(exc)
            return journal
        pool = DRAMBufferPool(
            num_chunks=spec.num_chunks, chunk_size=spec.chunk_size
        )
        orchestrator = PCcheckOrchestrator(engine, pool)
        handles = []
        try:
            for step in range(1, spec.steps + 1):
                source = BytesSource(self.expected_payload(spec, step))
                handles.append(orchestrator.checkpoint_async(source, step=step))
        except (CrashedDeviceError, EngineClosedError) as exc:
            journal.crashed = True
            journal.crash_error = str(exc)
        for handle in handles:
            try:
                result = handle.wait(HANDLE_WAIT_SECONDS)
            except CrashedDeviceError as exc:
                journal.crashed = True
                journal.crash_error = str(exc)
            except (TimeoutError, FuturesTimeoutError):
                journal.violations.append(
                    f"handle for step {handle.step} did not terminate "
                    f"within {HANDLE_WAIT_SECONDS}s after the crash"
                )
            else:
                if result.committed:
                    journal.ack(handle.step, result.counter)
        orchestrator.close()
        if pool.free_chunks != pool.total_chunks:
            journal.violations.append(
                f"DRAM buffer leak: {pool.free_chunks} of "
                f"{pool.total_chunks} chunks free after close()"
            )
        self._check_slot_conservation(engine, spec, journal)
        return journal


class DistributedWorkload(Workload):
    """Multi-rank checkpointing behind the rank-0 barrier; the sweep
    crashes rank 0's device, peers keep healthy devices.

    An acknowledged step here means *every* rank's checkpoint returned —
    the globally consistent property recovery must honour via
    :func:`repro.core.distributed.recover_consistent`.
    """

    name = "distributed"
    description = "multi-rank engines behind the rank-0 barrier"

    def run(self, device: CrashPointDevice, spec: WorkloadSpec) -> RunJournal:
        journal = RunJournal()
        peers = [
            InMemorySSD(spec.geometry().total_size, name=f"peer-{rank}")
            for rank in range(1, spec.world_size)
        ]
        journal.aux["peer_devices"] = peers
        barrier = CheckpointBarrier(
            spec.world_size, timeout=spec.barrier_timeout
        )
        try:
            layouts = [
                DeviceLayout.format(
                    device, num_slots=spec.num_slots, slot_size=spec.slot_size
                )
            ]
        except CrashedDeviceError as exc:
            journal.crashed = True
            journal.crash_error = str(exc)
            return journal
        layouts += [
            DeviceLayout.format(
                peer, num_slots=spec.num_slots, slot_size=spec.slot_size
            )
            for peer in peers
        ]
        workers = [
            DistributedWorker.create(
                rank, layout, barrier, writer_threads=spec.writer_threads
            )
            for rank, layout in enumerate(layouts)
        ]
        try:
            for step in range(1, spec.steps + 1):
                results: List[Optional[object]] = [None] * spec.world_size
                errors: List[BaseException] = []

                def one_rank(worker: DistributedWorker, step: int = step) -> None:
                    try:
                        results[worker.rank] = worker.checkpoint(
                            self.expected_payload(spec, step, rank=worker.rank),
                            step=step,
                        )
                    except (CrashedDeviceError, DistributedError) as exc:
                        errors.append(exc)

                threads = [
                    threading.Thread(target=one_rank, args=(worker,))
                    for worker in workers
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                if errors or any(result is None for result in results):
                    journal.crashed = True
                    journal.crash_error = (
                        str(errors[0]) if errors else "rank lost"
                    )
                    break
                journal.ack(step, results[0].counter)
            self._check_held_slot_invariant(workers, spec, journal)
        finally:
            DistributedCoordinator.for_barrier(barrier).close()
        return journal

    def _check_held_slot_invariant(
        self,
        workers: List[DistributedWorker],
        spec: WorkloadSpec,
        journal: RunJournal,
    ) -> None:
        """§4.1 slot custody: once every coordination round has settled —
        completed (recycle) or failed (reclaim) — no healthy rank's
        engine may still hold a superseded slot, and each holds back
        exactly its committed slot.  Settlement runs concurrently with
        the waiters waking, so the check polls briefly before declaring
        a leak."""
        # Rank 0's device is the crash target; its engine state at power
        # loss is unconstrained.  Peers keep healthy devices and must be
        # whole again even when the run died on a failed round.
        checked = workers[1:] if journal.crashed else workers
        deadline = time.monotonic() + 5.0
        for worker in checked:
            engine = worker.engine
            committed = engine.committed() is not None
            expected = spec.num_slots - (1 if committed else 0)
            while time.monotonic() < deadline:
                if (
                    engine.held_slots == ()
                    and engine.free_slots == expected
                ):
                    break
                time.sleep(SETTLE_POLL_SECONDS)
            if engine.held_slots != ():
                journal.violations.append(
                    f"rank {worker.rank} still holds superseded slots "
                    f"{list(engine.held_slots)} after every round settled"
                )
            elif engine.free_slots != expected:
                journal.violations.append(
                    f"rank {worker.rank} slot leak: {engine.free_slots} "
                    f"free of {spec.num_slots} (expected {expected}) "
                    "after rounds settled"
                )

    def validate_recovery(
        self, device: CrashPointDevice, spec: WorkloadSpec, journal: RunJournal
    ) -> RecoveryOutcome:
        violations = list(journal.violations)
        # Whole-cluster power loss at the sweep point: drop unpersisted
        # state on every rank, then recover the globally consistent step.
        if not device.inner.crashed:
            device.inner.crash()
        device.inner.recover()
        peers = journal.aux.get("peer_devices", [])
        for peer in peers:
            peer.crash()
            peer.recover()
        layouts = []
        for dev in [device.inner, *peers]:
            try:
                layouts.append(DeviceLayout.open(dev))
            except LayoutError:
                if journal.acked_steps:
                    violations.append(
                        f"rank device {dev.name} unopenable although steps "
                        f"{journal.acked_steps} were fully acknowledged"
                    )
                return RecoveryOutcome(None, "none", violations)
        try:
            consistent = recover_consistent(layouts)
        except NoCheckpointError:
            if journal.acked_steps:
                violations.append(
                    f"globally acknowledged step {max(journal.acked_steps)} "
                    "lost: no consistent checkpoint across ranks"
                )
            return RecoveryOutcome(None, "none", violations)
        if journal.acked_steps and consistent.step < max(journal.acked_steps):
            violations.append(
                f"consistent recovery regressed to step {consistent.step} "
                f"< acknowledged {max(journal.acked_steps)}"
            )
        for rank, payload in enumerate(consistent.payloads):
            if payload != self.expected_payload(
                spec, consistent.step, rank=rank
            ):
                violations.append(
                    f"rank {rank} payload corrupt at step {consistent.step}"
                )
        return RecoveryOutcome(consistent.step, "distributed", violations)


class ElasticShardedWorkload(DistributedWorkload):
    """The distributed workload writing shards of one global state, with
    elastic recovery onto different world sizes.

    Every rank persists its :func:`~repro.core.sharding.shard_payload`
    shard of a shared per-step state.  Recovery is validated three
    ways: the writer-world recovery must match the shards bit-exactly
    (the inherited check), and for each world size in
    ``spec.elastic_readers`` the re-partitioned recovery
    (:func:`~repro.core.distributed.recover_consistent` with
    ``world_size``) must reassemble to the *bit-identical* global state
    — ROADMAP item 4's acceptance bar, swept across every crash point.
    """

    name = "elastic"
    description = (
        "sharded global state; recovery re-partitioned onto other worlds"
    )

    def global_state(self, spec: WorkloadSpec, step: int) -> bytes:
        """Deterministic per-step global state with a step-varying
        length, so truncated or cross-slot reads can never validate.
        Sized so every shard (piece + header) fits the slot capacity."""
        pattern = f"es{step:06d};".encode()
        per_rank = max(1, spec.payload_capacity - 64)
        length = max(spec.world_size, spec.world_size * per_rank - (step % 5))
        reps = length // len(pattern) + 1
        return (pattern * reps)[:length]

    def expected_payload(
        self, spec: WorkloadSpec, step: int, rank: int = 0
    ) -> bytes:
        return shard_payload(
            self.global_state(spec, step), spec.world_size
        )[rank]

    def validate_recovery(
        self, device: CrashPointDevice, spec: WorkloadSpec, journal: RunJournal
    ) -> RecoveryOutcome:
        outcome = super().validate_recovery(device, spec, journal)
        if outcome.recovered_step is None:
            return outcome
        violations = list(outcome.violations)
        peers = journal.aux.get("peer_devices", [])
        layouts = [
            DeviceLayout.open(dev) for dev in [device.inner, *peers]
        ]
        expected_state = self.global_state(spec, outcome.recovered_step)
        for readers in spec.elastic_readers:
            try:
                resharded = recover_consistent(layouts, world_size=readers)
                reassembled = reassemble(resharded.payloads)
            except PCcheckError as exc:
                violations.append(
                    f"elastic recovery of step {outcome.recovered_step} "
                    f"onto {readers} ranks failed: {exc}"
                )
                continue
            if resharded.step != outcome.recovered_step:
                violations.append(
                    f"elastic recovery onto {readers} ranks chose step "
                    f"{resharded.step}, the {spec.world_size}-rank "
                    f"recovery chose {outcome.recovered_step}"
                )
            elif len(resharded.payloads) != readers:
                violations.append(
                    f"elastic recovery onto {readers} ranks returned "
                    f"{len(resharded.payloads)} payloads"
                )
            elif reassembled != expected_state:
                violations.append(
                    f"elastic recovery onto {readers} ranks is not "
                    f"bit-identical at step {resharded.step} "
                    f"({len(reassembled)} vs {len(expected_state)} bytes)"
                )
        return RecoveryOutcome(outcome.recovered_step, outcome.source,
                               violations)


class StripedEngineWorkload(Workload):
    """One-shot checkpoints on a striped device; member 0 takes the crash.

    The engine writes through a :class:`~repro.storage.striped.StripedDevice`
    whose member 0 is the sweep's fault-injecting device and whose peers
    are healthy in-memory SSDs — so every stripe-manifest write, every
    sharded payload write, and every per-member fence of member 0 is a
    crash point.  Validation models whole-node power loss (all members
    crash and restart), reassembles the stripe set, and demands the usual
    §4.1 guarantees *plus* the stripe-specific one: a torn or unpersisted
    manifest surfaces as the typed
    :class:`~repro.errors.CorruptCheckpointError`, never as a silently
    short or scrambled payload.
    """

    name = "striped"
    description = (
        "one-shot checkpoints striped over 3 members; member 0 crashes"
    )

    #: Stripe geometry: small enough that a 576-byte slot write shards
    #: across members (so torn stripes are reachable), large enough that
    #: the sweep stays fast.
    stripe_members = 3
    stripe_size = 512

    def run(self, device: CrashPointDevice, spec: WorkloadSpec) -> RunJournal:
        journal = RunJournal()
        peers = [
            InMemorySSD(spec.geometry().total_size, name=f"stripe-peer-{i}")
            for i in range(1, self.stripe_members)
        ]
        journal.aux["peer_devices"] = peers
        try:
            striped = StripedDevice.create(
                [device, *peers], stripe_size=self.stripe_size
            )
            layout = DeviceLayout.format(
                striped, num_slots=spec.num_slots, slot_size=spec.slot_size
            )
            engine = CheckpointEngine(
                layout,
                writer_threads=spec.writer_threads,
                sanitize=spec.sanitize,
            )
            for step in range(1, spec.steps + 1):
                result = engine.checkpoint(
                    self.expected_payload(spec, step), step=step
                )
                if result.committed:
                    journal.ack(step, result.counter)
        except CrashedDeviceError as exc:
            journal.crashed = True
            journal.crash_error = str(exc)
            return journal
        self._check_slot_conservation(engine, spec, journal)
        return journal

    def validate_recovery(
        self, device: CrashPointDevice, spec: WorkloadSpec, journal: RunJournal
    ) -> RecoveryOutcome:
        violations = list(journal.violations)
        # Whole-node power loss: every member loses its unpersisted
        # bytes, then the node restarts and reassembles the stripe set.
        if not device.inner.crashed:
            device.inner.crash()
        device.inner.recover()
        peers = journal.aux.get("peer_devices", [])
        for peer in peers:
            peer.crash()
            peer.recover()
        try:
            striped = StripedDevice.open([device.inner, *peers])
        except CorruptCheckpointError as exc:
            # Legitimate only while nothing was acknowledged (the crash
            # landed inside stripe-set creation); the error is typed and
            # names the member — never a short read.
            if journal.acked_steps:
                violations.append(
                    "stripe set unopenable after crash although steps "
                    f"{journal.acked_steps} were acknowledged: {exc}"
                )
            return RecoveryOutcome(None, "none", violations)
        try:
            layout = DeviceLayout.open(striped)
        except LayoutError:
            if journal.acked_steps:
                violations.append(
                    "striped region unopenable after crash although "
                    f"steps {journal.acked_steps} were acknowledged"
                )
            return RecoveryOutcome(None, "none", violations)
        return self._recovery_from_layout(layout, spec, journal, violations)


class TieredEngineWorkload(Workload):
    """One-shot checkpoints with the tier-demotion hook live; the hot
    device takes the crash while demotions are in flight.

    The engine writes through a :class:`~repro.storage.tiering.TieredDevice`
    whose hot member is the sweep's fault-injecting device; a
    :class:`~repro.storage.tiering.TierPolicy` asynchronously copies each
    committed checkpoint to a warm in-memory SSD and a
    :class:`~repro.storage.remote.RemoteStore`.  Crash points land only
    on hot-tier writes/persists — demotion traffic goes to the warm and
    remote devices, so the schedule is deterministic regardless of
    demotion timing.  Validation models whole-node power loss (hot and
    warm lose unpersisted bytes, the remote store drops
    acked-but-invisible blobs) and then proves the §4.1 guarantee twice:

    * the hot tier **alone** satisfies the inherited journal check — the
      commit record never depends on the warm or remote tier, even when
      the crash landed mid-demotion;
    * :func:`~repro.core.recovery.recover_tiered` agrees byte-exactly,
      picks the hot copy while it is valid, and keeps working with the
      remote tier completely unavailable.
    """

    name = "tiered"
    description = (
        "one-shot checkpoints with async warm/remote demotion; hot crashes"
    )

    def run(self, device: CrashPointDevice, spec: WorkloadSpec) -> RunJournal:
        journal = RunJournal()
        warm = InMemorySSD(spec.geometry().total_size, name="tier-warm")
        remote = RemoteStore(name="tier-remote")
        journal.aux["warm_device"] = warm
        journal.aux["remote_store"] = remote
        policy = None
        engine = None
        try:
            tiered = TieredDevice(device, warm, remote)
            layout = DeviceLayout.format(
                tiered, num_slots=spec.num_slots, slot_size=spec.slot_size
            )
            policy = TierPolicy(
                layout, warm, remote, plan=TierPlan(demote_threads=1)
            )
            engine = CheckpointEngine(
                layout,
                writer_threads=spec.writer_threads,
                sanitize=spec.sanitize,
                post_cas_hook=policy.on_commit,
            )
            for step in range(1, spec.steps + 1):
                result = engine.checkpoint(
                    self.expected_payload(spec, step), step=step
                )
                if result.committed:
                    journal.ack(step, result.counter)
        except CrashedDeviceError as exc:
            journal.crashed = True
            journal.crash_error = str(exc)
            return journal
        finally:
            # The demoter keeps its own writer threads; settle the queue
            # (failed demotions against a crashed hot tier drain fast) and
            # join the worker before recovery looks at the tiers.
            if policy is not None:
                policy.drain(timeout=5.0)
                policy.stop()
        self._check_slot_conservation(engine, spec, journal)
        return journal

    def validate_recovery(
        self, device: CrashPointDevice, spec: WorkloadSpec, journal: RunJournal
    ) -> RecoveryOutcome:
        violations = list(journal.violations)
        # Whole-node power loss: hot and warm lose unpersisted bytes, the
        # remote store drops blobs that were acked but not yet visible.
        if not device.inner.crashed:
            device.inner.crash()
        device.inner.recover()
        warm = journal.aux.get("warm_device")
        remote = journal.aux.get("remote_store")
        if warm is not None:
            warm.crash()
            warm.recover()
        if remote is not None:
            remote.power_fail()
        try:
            layout = DeviceLayout.open(device.inner)
        except LayoutError:
            if journal.acked_steps:
                violations.append(
                    "hot region unopenable after crash although steps "
                    f"{journal.acked_steps} were acknowledged"
                )
            return RecoveryOutcome(None, "none", violations)
        # The hot tier alone must satisfy §4.1 — the commit record never
        # depends on the (asynchronous, lossy) warm or remote copies.
        outcome = self._recovery_from_layout(layout, spec, journal, violations)
        violations = outcome.violations
        # The tier walk must agree byte-exactly, with and without the
        # remote tier reachable.
        for label, remote_dark in (("remote dark", True), ("all tiers", False)):
            if remote is not None and remote_dark:
                remote.fail()
            try:
                walked = recover_tiered(
                    device.inner, warm=warm, remote=remote
                )
            except NoCheckpointError:
                walked = None
            finally:
                if remote is not None and remote_dark:
                    remote.restore()
            if walked is None:
                if outcome.recovered_step is not None:
                    violations.append(
                        f"tier walk ({label}) found nothing although the "
                        f"hot tier recovered step {outcome.recovered_step}"
                    )
                continue
            if (
                outcome.recovered_step is not None
                and walked.meta.step < outcome.recovered_step
            ):
                violations.append(
                    f"tier walk ({label}) regressed to step "
                    f"{walked.meta.step} < hot-tier {outcome.recovered_step}"
                )
            if walked.payload != self.expected_payload(
                spec, walked.meta.step
            ):
                violations.append(
                    f"tier walk ({label}) payload corrupt at step "
                    f"{walked.meta.step}"
                )
            if (
                outcome.recovered_step is not None
                and not walked.source.startswith("hot:")
            ):
                violations.append(
                    f"tier walk ({label}) recovered from {walked.source} "
                    "although the hot tier holds a valid checkpoint"
                )
        return RecoveryOutcome(
            outcome.recovered_step, outcome.source, violations
        )


WORKLOADS: Dict[str, Workload] = {
    workload.name: workload
    for workload in (
        EngineOneShotWorkload(),
        StreamingTicketWorkload(),
        OrchestratorWorkload(),
        DistributedWorkload(),
        ElasticShardedWorkload(),
        StripedEngineWorkload(),
        TieredEngineWorkload(),
    )
}

#: Per-workload default slot counts: the orchestrator workload must host
#: ≥3 concurrent checkpoints (N = slots − 1).
DEFAULT_SLOTS: Dict[str, int] = {
    "engine": 3,
    "streaming": 3,
    "orchestrator": 4,
    "distributed": 3,
    "elastic": 3,
    "striped": 3,
    "tiered": 3,
}

#: Per-workload default world sizes: the elastic scenario shards a
#: 4-writer checkpoint and recovers it onto 2 and 8 ranks.
DEFAULT_WORLD: Dict[str, int] = {
    "distributed": 2,
    "elastic": 4,
}
