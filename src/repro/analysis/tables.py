"""Plain-text rendering of result tables and simple charts."""

from __future__ import annotations

from typing import List, Optional, Sequence


def render_table(columns: Sequence[str], rows: Sequence[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render rows as an aligned ASCII table."""
    formatted = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(column)), *(len(row[i]) for row in formatted) if formatted else (0,))
        for i, column in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in formatted:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


def render_bars(labels: Sequence[str], values: Sequence[float],
                width: int = 40, title: Optional[str] = None) -> str:
    """A horizontal ASCII bar chart (one bar per label)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    peak = max(values) if values else 1.0
    label_width = max((len(label) for label in labels), default=0)
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(round(width * value / peak))) if peak > 0 else ""
        lines.append(f"{label.ljust(label_width)} | {bar} {_fmt(value)}")
    return "\n".join(lines)
