"""Per-figure experiment generators.

One function per table/figure of the paper's evaluation; each returns a
:class:`FigureData` with tidy rows, ready for CSV output, the ASCII
renderer, or assertions in the benchmark harness.  The DESIGN.md
experiment index maps each figure to the modules used here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.config import PCcheckConfig, baseline_footprint
from repro.errors import ConfigError
from repro.sim.goodput import replay_goodput
from repro.sim.hardware import A2_HIGHGPU_1G, PMEM_MACHINE, MachineSpec
from repro.sim.recovery import recovery_model
from repro.sim.runner import (
    baseline_throughput,
    pccheck_default_config,
    persist_time,
    run_throughput,
)
from repro.sim.traces import andre_gcp_trace
from repro.sim.workloads import (
    FIGURE8_INTERVALS,
    FIGURE8_MODELS,
    WORKLOADS,
    get_workload,
)

GB = 1e9


@dataclass
class FigureData:
    """Tidy result set for one figure or table."""

    name: str
    title: str
    columns: List[str]
    rows: List[List[object]]

    def column(self, name: str) -> List[object]:
        """All values of one column."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def select(self, **filters: object) -> List[List[object]]:
        """Rows matching all ``column=value`` filters."""
        indices = {self.columns.index(key): value for key, value in filters.items()}
        return [
            row
            for row in self.rows
            if all(row[i] == value for i, value in indices.items())
        ]

    def value(self, column: str, **filters: object) -> object:
        """The single value of ``column`` in the row matching ``filters``."""
        rows = self.select(**filters)
        if len(rows) != 1:
            raise ConfigError(
                f"expected exactly one row for {filters}, got {len(rows)}"
            )
        return rows[0][self.columns.index(column)]


def _strategies_for(workload_name: str) -> List[str]:
    """Gemini needs distributed training, so it only appears for the
    pipeline-parallel models (§5.1)."""
    strategies = ["checkfreq", "gpm", "pccheck", "ideal"]
    if get_workload(workload_name).world_size > 1:
        strategies.insert(2, "gemini")
    return strategies


def _config_for(strategy: str, workload_name: str,
                machine: MachineSpec) -> Optional[PCcheckConfig]:
    if strategy == "pccheck":
        return pccheck_default_config(workload_name, machine=machine)
    return None


# ----------------------------------------------------------------------
# intro figures


def fig1(intervals: Sequence[int] = (1, 5, 10, 25, 50, 100)) -> FigureData:
    """Figure 1: CheckFreq/Gemini slowdown + recovery time, BLOOM-7B."""
    rows: List[List[object]] = []
    workload = get_workload("bloom_7b")
    for interval in intervals:
        for strategy in ("checkfreq", "gemini"):
            result = run_throughput("bloom_7b", strategy, interval)
            recovery = recovery_model(
                strategy, workload, interval, tw_seconds=result.mean_tw
            )
            rows.append(
                [strategy, interval, round(result.slowdown, 3),
                 round(recovery.average_seconds, 1)]
            )
    return FigureData(
        name="fig1",
        title="Fig 1: BLOOM-7B slowdown and recovery vs checkpoint interval",
        columns=["strategy", "interval", "slowdown", "recovery_seconds"],
        rows=rows,
    )


def fig2(intervals: Sequence[int] = (1, 5, 10, 25, 50, 100)) -> FigureData:
    """Figure 2: goodput vs interval for BLOOM-7B on the spot trace."""
    trace = andre_gcp_trace()
    rows: List[List[object]] = []
    for strategy in ("checkfreq", "gemini", "pccheck", "ideal"):
        for interval in intervals:
            config = _config_for(strategy, "bloom_7b", A2_HIGHGPU_1G)
            result = replay_goodput(
                "bloom_7b", strategy, interval, trace, config=config
            )
            rows.append(
                [strategy, interval, round(result.goodput, 4),
                 round(result.throughput, 4)]
            )
    return FigureData(
        name="fig2",
        title="Fig 2: BLOOM-7B goodput vs checkpoint interval (spot trace)",
        columns=["strategy", "interval", "goodput", "throughput"],
        rows=rows,
    )


# ----------------------------------------------------------------------
# main evaluation figures


def fig8(
    models: Sequence[str] = tuple(FIGURE8_MODELS),
    intervals: Sequence[int] = tuple(FIGURE8_INTERVALS),
    machine: MachineSpec = A2_HIGHGPU_1G,
) -> FigureData:
    """Figure 8: training throughput vs checkpoint frequency, SSD, A100."""
    rows: List[List[object]] = []
    for model in models:
        no_ckpt = baseline_throughput(model, machine)
        for strategy in _strategies_for(model):
            for interval in intervals:
                config = _config_for(strategy, model, machine)
                result = run_throughput(
                    model, strategy, interval, machine=machine, config=config
                )
                rows.append(
                    [model, strategy, interval,
                     round(result.throughput, 4), round(no_ckpt, 4),
                     round(result.slowdown, 3)]
                )
    return FigureData(
        name="fig8",
        title="Fig 8: throughput vs checkpoint frequency (SSD, A100)",
        columns=["model", "strategy", "interval", "throughput",
                 "no_checkpoint_throughput", "slowdown"],
        rows=rows,
    )


def fig9(
    models: Sequence[str] = tuple(FIGURE8_MODELS),
    intervals: Sequence[int] = tuple(FIGURE8_INTERVALS),
    machine: MachineSpec = A2_HIGHGPU_1G,
) -> FigureData:
    """Figure 9: goodput replaying the GCP A100 preemption trace."""
    trace = andre_gcp_trace()
    rows: List[List[object]] = []
    for model in models:
        for strategy in _strategies_for(model):
            for interval in intervals:
                config = _config_for(strategy, model, machine)
                result = replay_goodput(
                    model, strategy, interval, trace,
                    machine=machine, config=config,
                )
                rows.append(
                    [model, strategy, interval,
                     round(result.goodput, 4), round(result.throughput, 4)]
                )
    return FigureData(
        name="fig9",
        title="Fig 9: goodput on the GCP A100 spot preemption trace",
        columns=["model", "strategy", "interval", "goodput", "throughput"],
        rows=rows,
    )


def fig10(intervals: Sequence[int] = tuple(FIGURE8_INTERVALS)) -> FigureData:
    """Figure 10: BERT throughput with Intel Optane PMEM."""
    rows: List[List[object]] = []
    no_ckpt = baseline_throughput("bert", PMEM_MACHINE)
    for strategy in ("checkfreq", "gpm", "pccheck", "ideal"):
        for interval in intervals:
            config = _config_for(strategy, "bert", PMEM_MACHINE)
            result = run_throughput(
                "bert", strategy, interval, machine=PMEM_MACHINE, config=config
            )
            rows.append(
                [strategy, interval, round(result.throughput, 4),
                 round(no_ckpt, 4), round(result.slowdown, 3)]
            )
    return FigureData(
        name="fig10",
        title="Fig 10: BERT throughput on PMEM (Titan RTX machine)",
        columns=["strategy", "interval", "throughput",
                 "no_checkpoint_throughput", "slowdown"],
        rows=rows,
    )


def fig11(sizes_gb: Sequence[float] = (1.1, 2.7, 4.0, 16.2, 45.0, 108.0)) -> FigureData:
    """Figure 11: time to persist one checkpoint vs size."""
    rows: List[List[object]] = []
    for size_gb in sizes_gb:
        nbytes = size_gb * GB
        for strategy in ("checkfreq", "gpm", "gemini", "pccheck"):
            config = PCcheckConfig(
                num_concurrent=1, writer_threads=2,
                chunk_size=int(nbytes / 4), num_chunks=8,
            )
            seconds = persist_time(nbytes, strategy, config=config)
            rows.append([strategy, size_gb, round(seconds, 2)])
    return FigureData(
        name="fig11",
        title="Fig 11: time to persist one checkpoint vs size (SSD, A100)",
        columns=["strategy", "size_gb", "persist_seconds"],
        rows=rows,
    )


# ----------------------------------------------------------------------
# sensitivity figures


def fig12(
    intervals: Sequence[int] = (1, 5, 10, 25, 50, 100),
    concurrency: Sequence[int] = (1, 2, 3, 4),
) -> FigureData:
    """Figure 12: VGG-16 slowdown vs frequency and concurrent checkpoints.

    One writer thread per checkpoint, so a single checkpoint cannot
    saturate the SSD by itself — concurrency is what raises aggregate
    write throughput, until ~2 concurrent flows hit the device limit
    (the §5.4.1 saturation observation).
    """
    rows: List[List[object]] = []
    m = get_workload("vgg16").checkpoint_bytes
    for n in concurrency:
        for interval in intervals:
            config = PCcheckConfig(
                num_concurrent=n, writer_threads=1,
                chunk_size=int(m / 4), num_chunks=max(8, 4 * n),
            )
            result = run_throughput("vgg16", "pccheck", interval, config=config)
            rows.append([n, interval, round(result.slowdown, 3)])
    return FigureData(
        name="fig12",
        title="Fig 12: VGG-16 slowdown vs concurrent checkpoints",
        columns=["num_concurrent", "interval", "slowdown"],
        rows=rows,
    )


def fig13(
    threads: Sequence[int] = (1, 2, 3),
    concurrency: Sequence[int] = (1, 2, 3),
    interval: int = 10,
) -> FigureData:
    """Figure 13: OPT-350M slowdown vs writer threads per checkpoint."""
    rows: List[List[object]] = []
    m = get_workload("opt_350m").checkpoint_bytes
    for n in concurrency:
        for p in threads:
            config = PCcheckConfig(
                num_concurrent=n, writer_threads=p,
                chunk_size=int(m / 4), num_chunks=max(8, 4 * n),
            )
            result = run_throughput("opt_350m", "pccheck", interval, config=config)
            rows.append([n, p, round(result.slowdown, 3)])
    return FigureData(
        name="fig13",
        title="Fig 13: OPT-350M slowdown vs writer threads (f=10)",
        columns=["num_concurrent", "writer_threads", "slowdown"],
        rows=rows,
    )


def fig14(
    dram_fractions: Sequence[float] = (1.0, 1.5, 2.0),
    chunk_counts: Sequence[int] = (1, 2, 4, 8),
    interval: int = 15,
) -> FigureData:
    """Figure 14: OPT-1.3B throughput vs DRAM size and pipeline chunks.

    One writer thread per checkpoint so each persist drains slowly enough
    for checkpoints to overlap — only then do staging buffers stay
    occupied long enough for the DRAM budget to matter at all (the §5.4.3
    observation that even a pool of m costs at most ~7%).
    """
    rows: List[List[object]] = []
    m = get_workload("opt_1_3b").checkpoint_bytes
    for fraction in dram_fractions:
        for chunks_per_checkpoint in chunk_counts:
            chunk_size = int(m / chunks_per_checkpoint)
            num_chunks = max(1, int(fraction * m / chunk_size))
            config = PCcheckConfig(
                num_concurrent=2, writer_threads=1,
                chunk_size=chunk_size, num_chunks=num_chunks,
            )
            result = run_throughput("opt_1_3b", "pccheck", interval, config=config)
            rows.append(
                [fraction, chunks_per_checkpoint, round(result.throughput, 4)]
            )
    return FigureData(
        name="fig14",
        title="Fig 14: OPT-1.3B throughput vs DRAM budget and chunking (f=15)",
        columns=["dram_over_m", "chunks_per_checkpoint", "throughput"],
        rows=rows,
    )


# ----------------------------------------------------------------------
# prose experiments (no figure number, but stated results)


def exp_h100(intervals: Sequence[int] = tuple(FIGURE8_INTERVALS)) -> FigureData:
    """§5.2.1's H100 experiment: OPT-1.3B on an Azure H100 VM.

    "We observe similar patterns for PCcheck and the baselines, since the
    iteration time was halved, and the disk bandwidth doubled."
    """
    from repro.sim.hardware import H100_VM

    rows: List[List[object]] = []
    for machine in (A2_HIGHGPU_1G, H100_VM):
        no_ckpt = baseline_throughput("opt_1_3b", machine)
        for strategy in ("checkfreq", "gpm", "pccheck"):
            for interval in intervals:
                config = _config_for(strategy, "opt_1_3b", machine)
                result = run_throughput(
                    "opt_1_3b", strategy, interval, machine=machine,
                    config=config,
                )
                rows.append(
                    [machine.name, strategy, interval,
                     round(result.throughput, 4), round(no_ckpt, 4),
                     round(result.slowdown, 3)]
                )
    return FigureData(
        name="exp_h100",
        title="§5.2.1: OPT-1.3B on A100/pd-ssd vs H100/NVMe",
        columns=["machine", "strategy", "interval", "throughput",
                 "no_checkpoint_throughput", "slowdown"],
        rows=rows,
    )


def exp_pmem_paths(
    sizes_gb: Sequence[float] = (1.1, 2.7, 4.0),
    intervals: Sequence[int] = (1, 10, 25),
) -> FigureData:
    """§3.3's PMEM persistence-path comparison: nt-store vs clwb.

    "bypassing the cache with a non-temporal store instruction followed
    by an sfence achieves higher bandwidth (4.01 GB/sec ...) compared to
    the clwb instruction approach (2.46 GB/sec)".
    """
    from repro.sim.hardware import PMEM_MACHINE_CLWB

    rows: List[List[object]] = []
    for machine, path in ((PMEM_MACHINE, "nt-store"),
                          (PMEM_MACHINE_CLWB, "clwb")):
        for size_gb in sizes_gb:
            config = PCcheckConfig(
                num_concurrent=1, writer_threads=2,
                chunk_size=int(size_gb * GB / 4), num_chunks=8,
            )
            seconds = persist_time(size_gb * GB, "pccheck", machine=machine,
                                   config=config)
            rows.append([path, "persist_time", size_gb, round(seconds, 3)])
        for interval in intervals:
            config = pccheck_default_config("bert", machine=machine)
            result = run_throughput("bert", "pccheck", interval,
                                    machine=machine, config=config)
            rows.append([path, "slowdown", interval,
                         round(result.slowdown, 3)])
    return FigureData(
        name="exp_pmem_paths",
        title="§3.3: PMEM nt-store+sfence vs clwb+fence persistence paths",
        columns=["path", "metric", "x", "value"],
        rows=rows,
    )


# ----------------------------------------------------------------------
# tables


def table1(checkpoint_gb: float = 1.0, num_concurrent: int = 2) -> FigureData:
    """Table 1: memory/storage footprint per algorithm."""
    m = int(checkpoint_gb * GB)
    rows: List[List[object]] = []
    for name in ("checkfreq", "gpm", "gemini"):
        footprint = baseline_footprint(name, m)
        rows.append(
            [name, footprint.gpu / GB, footprint.dram_min / GB,
             footprint.dram_max / GB, footprint.storage / GB]
        )
    config = PCcheckConfig(num_concurrent=num_concurrent, chunk_size=m // 2,
                           num_chunks=4)
    footprint = config.footprint(m)
    rows.append(
        ["pccheck", footprint.gpu / GB, footprint.dram_min / GB,
         footprint.dram_max / GB, footprint.storage / GB]
    )
    return FigureData(
        name="table1",
        title=f"Table 1: footprint in GB for m = {checkpoint_gb} GB, "
              f"N = {num_concurrent}",
        columns=["algorithm", "gpu_gb", "dram_min_gb", "dram_max_gb",
                 "storage_gb"],
        rows=rows,
    )


def table3() -> FigureData:
    """Table 3: the evaluated model catalog."""
    rows = [
        [w.name, w.dataset, w.batch_size_a100,
         round(w.checkpoint_bytes / GB, 1), w.world_size,
         w.iteration_time, w.estimated]
        for w in WORKLOADS.values()
    ]
    return FigureData(
        name="table3",
        title="Table 3: evaluated models (checkpoint = model + optimizer)",
        columns=["model", "dataset", "batch_size", "checkpoint_gb",
                 "world_size", "iteration_time_s", "iteration_estimated"],
        rows=rows,
    )


#: Registry used by the CLI and benchmark harness.
FIGURES: Dict[str, Callable[[], FigureData]] = {
    "fig1": fig1,
    "fig2": fig2,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "table1": table1,
    "table3": table3,
    "exp_h100": exp_h100,
    "exp_pmem_paths": exp_pmem_paths,
}


def generate(name: str) -> FigureData:
    """Run one figure/table generator by name."""
    try:
        factory = FIGURES[name]
    except KeyError:
        raise ConfigError(
            f"unknown figure {name!r}; available: {sorted(FIGURES)}"
        ) from None
    return factory()
