"""Command-line entry point: regenerate any table or figure.

Usage::

    pccheck-repro list
    pccheck-repro fig8 --out results/
    pccheck-repro all --out results/
    pccheck-repro tune --model opt_1_3b

Each figure command prints the result table and, with ``--out``, writes a
CSV named after the figure.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.analysis.csvout import write_csv
from repro.analysis.figures import FIGURES, generate
from repro.analysis.tables import render_table


def _run_figure(name: str, out_dir: Optional[str]) -> None:
    data = generate(name)
    print(render_table(data.columns, data.rows, title=data.title))
    if out_dir:
        path = write_csv(
            os.path.join(out_dir, f"{data.name}.csv"), data.columns, data.rows
        )
        print(f"\nwrote {path}")


def _run_tune(model: str, slowdown: float) -> None:
    from repro.core.autotune import tune
    from repro.core.config import SystemParameters, UserConstraints
    from repro.sim.hardware import A2_HIGHGPU_1G
    from repro.sim.runner import simulated_tw_probe
    from repro.sim.workloads import get_workload

    workload = get_workload(model)
    machine = A2_HIGHGPU_1G
    system = SystemParameters(
        pcie_bandwidth=machine.pcie_bandwidth,
        storage_bandwidth=machine.storage.write_bandwidth,
        iteration_time=workload.iteration_time,
        checkpoint_size=int(workload.partition_bytes),
    )
    constraints = UserConstraints(
        dram_budget=int(2 * workload.partition_bytes),
        storage_budget=int(8 * workload.partition_bytes),
        max_slowdown=slowdown,
    )
    result = tune(simulated_tw_probe(model, machine=machine), system, constraints)
    print(f"model            : {model}")
    print(f"optimal N*       : {result.num_concurrent}")
    print(f"measured Tw      : {result.tw_seconds:.2f} s")
    print(f"min interval f*  : {result.interval} iterations (q = {slowdown})")
    print("candidates       : "
          + ", ".join(f"N={n}: Tw={tw:.2f}s" for n, tw in result.candidates.items()))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pccheck-repro",
        description="Regenerate the PCcheck paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available figures and tables")
    all_parser = sub.add_parser("all", help="run every figure and table")
    all_parser.add_argument("--out", default=None, help="CSV output directory")
    for name in FIGURES:
        figure_parser = sub.add_parser(name, help=f"regenerate {name}")
        figure_parser.add_argument("--out", default=None,
                                   help="CSV output directory")
    tune_parser = sub.add_parser("tune", help="run the §3.4 auto-tuner")
    tune_parser.add_argument("--model", default="opt_1_3b")
    tune_parser.add_argument("--slowdown", type=float, default=1.05)
    inspect_parser = sub.add_parser(
        "inspect", help="report every checkpoint in a region file"
    )
    inspect_parser.add_argument("path", help="checkpoint region file")
    rc_parser = sub.add_parser(
        "recover-consistent",
        help="find the newest globally consistent step across every "
        "rank's region file (§4.1)",
    )
    rc_parser.add_argument(
        "paths", nargs="+",
        help="one checkpoint region file per rank, in rank order",
    )
    rc_parser.add_argument(
        "--out", default=None,
        help="directory to write the recovered payloads "
        "(rank<k>.step<S>.bin)",
    )
    rc_parser.add_argument(
        "--world-size", type=int, default=None,
        help="re-partition the recovered sharded checkpoint onto this "
        "many ranks (elastic recovery; default: the writer world)",
    )
    rc_parser.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report format",
    )
    lint_parser = sub.add_parser(
        "lint",
        help="run the concurrency-invariant linter (per-file rules "
        "PC001-PC008, whole-program rules PC009-PC011); exits 0 clean, "
        "1 findings, 2 usage error",
    )
    lint_parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories"
    )
    lint_parser.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
        help="report format",
    )
    lint_parser.add_argument(
        "--select", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    lint_parser.add_argument(
        "--no-project", action="store_true",
        help="per-file rules only; skip the whole-program pass",
    )
    lint_parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="subtract known findings in FILE; only new ones count",
    )
    lint_parser.add_argument(
        "--write-baseline", default=None, metavar="FILE",
        help="snapshot current findings to FILE and exit 0",
    )
    lint_parser.add_argument(
        "--cache", default=None, metavar="FILE",
        help="persist the project index across runs (content-hash "
        "incremental)",
    )
    lint_parser.add_argument(
        "--warn-unused-suppressions", action="store_true",
        help="report pclint directives that silenced nothing",
    )
    for verb, help_text in (
        ("metrics", "run an instrumented demo workload and print its "
                    "metrics registry"),
        ("trace", "run an instrumented demo workload and emit its "
                  "Chrome trace_event JSON"),
    ):
        obs_parser = sub.add_parser(verb, help=help_text)
        obs_parser.add_argument(
            "--checkpoints", type=int, default=8,
            help="checkpoints to push through the pipeline",
        )
        obs_parser.add_argument(
            "--concurrent", type=int, default=4,
            help="N, the concurrent-checkpoint limit",
        )
        obs_parser.add_argument(
            "--payload-kib", type=int, default=64,
            help="checkpoint payload size in KiB",
        )
        obs_parser.add_argument("--seed", type=int, default=0)
        obs_parser.add_argument(
            "--out", default=None,
            help="write the output to this file instead of stdout",
        )
        if verb == "metrics":
            obs_parser.add_argument(
                "--format", choices=["prom", "json"], default="prom",
                help="exposition format",
            )
    serve_parser = sub.add_parser(
        "serve",
        help="run the multi-tenant checkpoint-service demo: a mixed "
        "tenant fleet with per-tenant quotas, admission control, and "
        "cross-tenant group commit over one engine pool",
    )
    serve_parser.add_argument(
        "--tenants", type=int, default=8,
        help="total tenants (half dedicated, half coalesced)",
    )
    serve_parser.add_argument(
        "--rounds", type=int, default=6,
        help="checkpoints each tenant submits",
    )
    serve_parser.add_argument(
        "--pool-size", type=int, default=3,
        help="engines in the shared pool",
    )
    serve_parser.add_argument(
        "--payload-kib", type=int, default=1024,
        help="dedicated-tenant checkpoint payload size in KiB",
    )
    serve_parser.add_argument("--seed", type=int, default=1234)
    serve_parser.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report format",
    )
    sweep_parser = sub.add_parser(
        "crashsweep",
        help="sweep a crash across every device op of a workload and "
        "verify the §4.1 recovery guarantee at each point",
    )
    sweep_parser.add_argument(
        "--workload", default="engine",
        choices=["engine", "streaming", "orchestrator", "distributed",
                 "elastic", "striped", "tiered"],
        help="which checkpointing workload to crash",
    )
    sweep_parser.add_argument(
        "--steps", type=int, default=3,
        help="checkpoints the workload attempts",
    )
    sweep_parser.add_argument(
        "--slots", type=int, default=None,
        help="checkpoint slots (default: per-workload)",
    )
    sweep_parser.add_argument("--payload-capacity", type=int, default=512)
    sweep_parser.add_argument("--writer-threads", type=int, default=2)
    sweep_parser.add_argument(
        "--world-size", type=int, default=None,
        help="writer ranks for multi-rank workloads "
        "(default: 2 distributed, 4 elastic)",
    )
    sweep_parser.add_argument(
        "--device", default="ssd", choices=["ssd", "pmem"]
    )
    sweep_parser.add_argument(
        "--stride", type=int, default=1,
        help="sweep every stride-th crash point",
    )
    sweep_parser.add_argument(
        "--max-points", type=int, default=None,
        help="cap on swept points (evenly subsampled)",
    )
    sweep_parser.add_argument(
        "--point", type=int, default=None,
        help="run exactly one crash point (reproducer mode)",
    )
    sweep_parser.add_argument(
        "--seed", type=int, default=None,
        help="rng seed for cache-line survival and torn-write cuts",
    )
    sweep_parser.add_argument(
        "--torn", action="store_true",
        help="tear the write at the crash op (durable prefix only)",
    )
    sweep_parser.add_argument(
        "--target", default=None, choices=["commit-record"],
        help="sweep only ops touching this structure",
    )
    sweep_parser.add_argument(
        "--format", choices=["text", "json"], default="text"
    )
    sweep_parser.add_argument(
        "--no-sanitize", action="store_true",
        help="disable the runtime invariant sanitizer during the sweep",
    )
    sim_parser = sub.add_parser(
        "sim",
        help="run the calibrated throughput simulator for one workload "
        "and print every strategy's slowdown at the given interval",
    )
    sim_parser.add_argument(
        "--workload", default="opt_1_3b",
        help="simulated training workload (see repro.sim.workloads)",
    )
    sim_parser.add_argument(
        "--interval", type=int, default=10,
        help="checkpoint every N iterations",
    )
    sim_parser.add_argument(
        "--strategy", default=None,
        help="run only this strategy (default: all simulated strategies)",
    )
    sim_parser.add_argument(
        "--iterations", type=int, default=None,
        help="simulated iterations (default: enough for steady state)",
    )
    sim_parser.add_argument("--out", default=None,
                            help="CSV output directory")
    return parser


def _run_crashsweep(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.crashsweep import (
        CrashSweepConfig,
        render_json,
        render_point,
        render_text,
        run_point,
        sweep,
    )

    config = CrashSweepConfig(
        workload=args.workload,
        steps=args.steps,
        num_slots=args.slots,
        payload_capacity=args.payload_capacity,
        writer_threads=args.writer_threads,
        device=args.device,
        seed=args.seed,
        torn_writes=args.torn,
        stride=args.stride,
        max_points=args.max_points,
        target=args.target,
        sanitize=not args.no_sanitize,
        world_size=args.world_size,
    )
    if args.point is not None:
        outcome = run_point(config, args.point)
        if args.format == "json":
            print(json.dumps(outcome.to_dict(), indent=2, sort_keys=True))
        else:
            print(render_point(outcome))
        return 1 if outcome.violations else 0
    report = sweep(config)
    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report))
    return 0 if report.ok else 1


def _run_sim(args: argparse.Namespace) -> int:
    from repro.errors import PCcheckError
    from repro.sim.runner import run_throughput
    from repro.strategies import simulated_strategies

    names = [args.strategy] if args.strategy else simulated_strategies()
    columns = ["strategy", "interval", "throughput_it_s", "slowdown",
               "mean_tw_s", "checkpoints"]
    rows = []
    for name in names:
        try:
            result = run_throughput(
                args.workload, name, args.interval,
                num_iterations=args.iterations,
            )
        except PCcheckError as exc:
            print(f"sim: {exc}", file=sys.stderr)
            return 1
        rows.append([
            name,
            args.interval,
            f"{result.throughput:.3f}",
            f"{result.slowdown:.4f}",
            f"{result.mean_tw:.4f}",
            result.checkpoints,
        ])
    print(render_table(
        columns, rows,
        title=f"simulated throughput — {args.workload}",
    ))
    if args.out:
        path = write_csv(
            os.path.join(args.out, f"sim_{args.workload}.csv"),
            columns, rows,
        )
        print(f"\nwrote {path}")
    return 0


def _run_recover_consistent(args: argparse.Namespace) -> int:
    import json

    from repro.core.distributed import recover_consistent
    from repro.errors import PCcheckError
    from repro.service.pool import open_existing_region

    devices = []
    try:
        try:
            layouts = []
            for path in args.paths:
                device, layout = open_existing_region(path)
                devices.append(device)
                layouts.append(layout)
            result = recover_consistent(layouts, world_size=args.world_size)
        except PCcheckError as exc:
            print(f"recover-consistent: {exc}", file=sys.stderr)
            return 1
        written = []
        if args.out:
            os.makedirs(args.out, exist_ok=True)
            for rank, payload in enumerate(result.payloads):
                out_path = os.path.join(
                    args.out, f"rank{rank}.step{result.step}.bin"
                )
                with open(out_path, "wb") as fh:
                    fh.write(payload)
                written.append(out_path)
        if args.format == "json":
            print(json.dumps({
                "step": result.step,
                "world_size": result.world_size,
                "writer_world": result.writer_world,
                "resharded": result.resharded,
                "writers": [
                    {
                        "rank": rank,
                        "counter": meta.counter,
                        "slot": meta.slot,
                        "payload_len": meta.payload_len,
                        "source": source,
                    }
                    for rank, (meta, source) in enumerate(
                        zip(result.metas, result.sources)
                    )
                ],
                "payload_lens": [len(p) for p in result.payloads],
                "written": written,
            }, indent=2, sort_keys=True))
        else:
            print(f"globally consistent step: {result.step}")
            for rank, (meta, source) in enumerate(
                zip(result.metas, result.sources)
            ):
                print(
                    f"writer rank {rank}: counter={meta.counter} "
                    f"slot={meta.slot} len={meta.payload_len} via {source}"
                )
            if result.resharded:
                print(
                    f"re-partitioned {result.writer_world}-writer "
                    f"checkpoint onto {result.world_size} ranks:"
                )
                for rank, payload in enumerate(result.payloads):
                    print(f"reader rank {rank}: len={len(payload)}")
            for out_path in written:
                print(f"wrote {out_path}")
        return 0
    finally:
        for device in devices:
            device.close()


def _run_serve(args: argparse.Namespace) -> int:
    import json

    from repro.service.driver import render_report, run_service_demo

    report = run_service_demo(
        tenants=args.tenants,
        rounds=args.rounds,
        capacity_bytes=args.payload_kib * 1024,
        pool_size=args.pool_size,
        seed=args.seed,
    )
    if args.format == "json":
        print(json.dumps(report, indent=2, sort_keys=True, default=str))
    else:
        print(render_report(report))
    leaks = report["leak_report"]
    return 0 if not leaks["leaked_slots"] and not leaks["leaked_buffers"] else 1


def _run_obs(args: argparse.Namespace) -> int:
    import json

    from repro.obs.driver import run_demo_workload

    run = run_demo_workload(
        checkpoints=args.checkpoints,
        concurrent=args.concurrent,
        payload_bytes=args.payload_kib * 1024,
        observability="full" if args.command == "trace" else "metrics",
        seed=args.seed,
    )
    for line in run.summary_lines():
        print(f"# {line}", file=sys.stderr)
    if args.command == "trace":
        text = json.dumps(run.tracer.to_chrome_trace(), indent=2)
    elif args.format == "json":
        text = run.metrics.to_json()
    else:
        text = run.metrics.to_prometheus()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(text)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name in sorted(FIGURES):
            print(name)
        return 0
    if args.command == "tune":
        _run_tune(args.model, args.slowdown)
        return 0
    if args.command == "inspect":
        from repro.core.inspect import inspect_file

        report = inspect_file(args.path)
        for line in report.summary_lines():
            print(line)
        return 0 if report.recovery_choice is not None else 1
    if args.command == "recover-consistent":
        return _run_recover_consistent(args)
    if args.command == "lint":
        from repro.analysis.static.runner import run_lint

        return run_lint(
            args.paths,
            report_format=args.format,
            select=args.select,
            project=not args.no_project,
            baseline=args.baseline,
            write_baseline=args.write_baseline,
            cache=args.cache,
            warn_unused_suppressions=args.warn_unused_suppressions,
        )
    if args.command == "serve":
        return _run_serve(args)
    if args.command in ("metrics", "trace"):
        return _run_obs(args)
    if args.command == "crashsweep":
        return _run_crashsweep(args)
    if args.command == "sim":
        return _run_sim(args)
    if args.command == "all":
        for name in sorted(FIGURES):
            _run_figure(name, args.out)
            print()
        return 0
    _run_figure(args.command, args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
