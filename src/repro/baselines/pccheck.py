"""PCcheck as a training-loop strategy.

Adapts the :class:`~repro.core.orchestrator.PCcheckOrchestrator` to the
:class:`~repro.baselines.base.CheckpointStrategy` interface so the same
:class:`~repro.training.loop.Trainer` can run PCcheck and every baseline
interchangeably — the setup of the paper's Figure 8 comparisons.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.baselines.base import CheckpointStrategy
from repro.core.config import PCcheckConfig
from repro.core.engine import CheckpointEngine
from repro.core.layout import DeviceLayout
from repro.core.orchestrator import PCcheckOrchestrator
from repro.core.snapshot import BytesSource
from repro.storage.device import PersistentDevice
from repro.storage.dram import DRAMBufferPool


class PCcheckStrategy(CheckpointStrategy):
    """Concurrent checkpointing with up to N in flight."""

    name = "pccheck"

    def __init__(
        self,
        device: PersistentDevice,
        payload_capacity: int,
        config: Optional[PCcheckConfig] = None,
        metrics=None,
        tracer=None,
    ) -> None:
        """``metrics``/``tracer`` (a
        :class:`~repro.obs.metrics.MetricsRegistry` and a
        :class:`~repro.obs.trace.Tracer`) instrument the whole stack —
        engine, orchestrator, and device — for the observability
        benchmarks; omitted, telemetry costs nothing."""
        super().__init__()
        from repro.core.meta import RECORD_SIZE

        self._config = config or PCcheckConfig()
        self._layout = DeviceLayout.format(
            device,
            num_slots=self._config.num_slots,
            slot_size=payload_capacity + RECORD_SIZE,
        )
        if metrics is not None:
            device.attach_metrics(metrics)
        engine = CheckpointEngine(
            self._layout, writer_threads=self._config.writer_threads,
            metrics=metrics, tracer=tracer,
        )
        pool = DRAMBufferPool(
            num_chunks=self._config.num_chunks,
            chunk_size=self._config.effective_chunk_size(payload_capacity),
        )
        self._orchestrator = PCcheckOrchestrator(engine, pool, self._config)

    @property
    def layout(self) -> DeviceLayout:
        """The on-device region (for recovery in tests and examples)."""
        return self._layout

    @property
    def orchestrator(self) -> PCcheckOrchestrator:
        """The underlying orchestrator (stats, drain)."""
        return self._orchestrator

    def before_update(self) -> None:
        waited = self._orchestrator.wait_for_snapshots()
        self.stats.add_update_block(waited)

    def checkpoint(self, payload: bytes, step: int) -> None:
        start = time.monotonic()
        self.stats.checkpoints_started += 1
        self._orchestrator.checkpoint_async(BytesSource(payload), step=step)
        self.stats.add_checkpoint_block(time.monotonic() - start)

    def drain(self) -> None:
        results = self._orchestrator.drain()
        self.stats.checkpoints_completed += len(results)

    def latest_recoverable_step(self) -> Optional[int]:
        committed = self._orchestrator.engine.committed()
        return committed.step if committed is not None else None

    def close(self) -> None:
        self._orchestrator.close()
