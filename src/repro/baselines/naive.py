"""The traditional synchronous baseline (Figure 3).

PyTorch/TensorFlow-style checkpointing: training stops, the state is
copied out and persisted, and only then does the next iteration start.
All four phases — T, U, C (copy), P (persist) — are strictly sequential.

Implementation: a dedicated two-slot engine (one in flight + one valid,
exactly the ``2 × m`` storage row of Table 1) whose ``checkpoint()`` call
the training thread performs inline.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.baselines.base import CheckpointStrategy
from repro.core.engine import CheckpointEngine
from repro.core.layout import DeviceLayout
from repro.storage.device import PersistentDevice


class NaiveStrategy(CheckpointStrategy):
    """Fully synchronous checkpointing over an engine with N = 1."""

    name = "naive"

    def __init__(
        self, device: PersistentDevice, payload_capacity: int, writer_threads: int = 1
    ) -> None:
        super().__init__()
        from repro.core.meta import RECORD_SIZE

        self._layout = DeviceLayout.format(
            device, num_slots=2, slot_size=payload_capacity + RECORD_SIZE
        )
        self._engine = CheckpointEngine(self._layout, writer_threads=writer_threads)
        self._latest_step: Optional[int] = None

    @property
    def layout(self) -> DeviceLayout:
        """The on-device region (for recovery in tests and examples)."""
        return self._layout

    def checkpoint(self, payload: bytes, step: int) -> None:
        start = time.monotonic()
        self.stats.checkpoints_started += 1
        result = self._engine.checkpoint(payload, step=step)
        if result.committed:
            self._latest_step = step
        self.stats.checkpoints_completed += 1
        self.stats.add_checkpoint_block(time.monotonic() - start)

    def latest_recoverable_step(self) -> Optional[int]:
        return self._latest_step

    def close(self) -> None:
        self._engine.close()
