"""A functional Gemini baseline (Wang et al., SOSP'23).

Gemini checkpoints to the **CPU memory of a remote machine** instead of
persistent storage: the training state streams over the inter-machine
network into a peer's DRAM, double-buffered there so one complete
checkpoint always survives the sender's failure (but not the receiver's
— that is Gemini's availability trade-off versus storage-backed
designs).

This implementation reproduces the moving parts with threads:

* :class:`RemoteMemoryStore` — the peer's DRAM: two alternating buffers
  plus a committed index, flipped only after a full transfer arrives;
* :class:`NetworkChannel` — a bandwidth-throttled, chunked byte pipe
  standing in for the NIC (the paper measured 15 Gbps between
  a2-highgpu-1g VMs);
* :class:`GeminiStrategy` — the sender: one checkpoint in flight at a
  time (the same serialisation CheckFreq has), streamed chunk by chunk.

Recovery asks the remote store for its newest committed checkpoint.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional, Tuple

from repro.baselines.base import CheckpointStrategy
from repro.errors import NoCheckpointError, StorageError
from repro.storage.device import Buffer, as_view


class NetworkChannel:
    """A chunked, bandwidth-throttled byte pipe (the inter-VM network)."""

    def __init__(self, bandwidth: Optional[float] = None,
                 chunk_size: int = 1 << 20) -> None:
        if chunk_size <= 0:
            raise StorageError(f"chunk size must be positive, got {chunk_size}")
        self._bandwidth = bandwidth
        self._chunk_size = chunk_size
        self.bytes_sent = 0

    def send(self, payload: Buffer, deliver) -> None:
        """Stream ``payload`` chunk by chunk into ``deliver(offset, data)``.

        Chunks are memoryview slices of the payload — a NIC scatter-gathers
        from the source buffer; it does not re-materialize each chunk.
        """
        view = as_view(payload)
        for offset in range(0, len(view), self._chunk_size):
            chunk = view[offset : offset + self._chunk_size]
            if self._bandwidth:
                time.sleep(len(chunk) / self._bandwidth)
            deliver(offset, chunk)
            self.bytes_sent += len(chunk)


class RemoteMemoryStore:
    """The remote peer's CPU memory: double-buffered checkpoint slots."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise StorageError(f"capacity must be positive, got {capacity}")
        self._buffers: List[bytearray] = [bytearray(capacity), bytearray(capacity)]
        self._lengths = [0, 0]
        self._steps = [-1, -1]
        self._committed: Optional[int] = None  # buffer index
        self._lock = threading.Lock()

    def begin(self, step: int) -> int:
        """Reserve the non-committed buffer for an incoming checkpoint."""
        with self._lock:
            target = 0 if self._committed != 0 else 1
            self._lengths[target] = 0
            self._steps[target] = step
            return target

    def receive(self, buffer_index: int, offset: int, chunk: Buffer) -> None:
        """Land one network chunk into the staging buffer."""
        buffer = self._buffers[buffer_index]
        if offset + len(chunk) > len(buffer):
            raise StorageError("checkpoint exceeds remote buffer capacity")
        buffer[offset : offset + len(chunk)] = chunk
        with self._lock:
            self._lengths[buffer_index] = max(
                self._lengths[buffer_index], offset + len(chunk)
            )

    def commit(self, buffer_index: int) -> None:
        """Flip the committed pointer — the transfer completed."""
        with self._lock:
            self._committed = buffer_index

    def latest(self) -> Tuple[int, bytes]:
        """The newest committed checkpoint as ``(step, payload)``."""
        with self._lock:
            if self._committed is None:
                raise NoCheckpointError("remote store holds no checkpoint")
            index = self._committed
            return self._steps[index], bytes(
                self._buffers[index][: self._lengths[index]]
            )

    def fail(self) -> None:
        """Simulate the *remote* machine failing: everything is lost.

        This is the scenario where Gemini, unlike the storage-backed
        designs, cannot recover (Table 1: zero persistent storage).
        """
        with self._lock:
            self._committed = None
            self._buffers = [bytearray(len(b)) for b in self._buffers]
            self._lengths = [0, 0]


class GeminiStrategy(CheckpointStrategy):
    """Checkpoint to remote CPU memory, one transfer at a time."""

    name = "gemini"

    def __init__(self, store: RemoteMemoryStore,
                 channel: Optional[NetworkChannel] = None) -> None:
        super().__init__()
        self._store = store
        self._channel = channel or NetworkChannel()
        # Reused snapshot staging, grown on demand: one transfer is in
        # flight at a time and checkpoint() joins the previous one before
        # re-filling, so reuse is race-free.
        self._staging = bytearray()
        self._pending: Optional[threading.Thread] = None
        self._error: Optional[BaseException] = None
        self._latest_step: Optional[int] = None
        self._lock = threading.Lock()

    @property
    def store(self) -> RemoteMemoryStore:
        """The remote memory this strategy checkpoints into."""
        return self._store

    def checkpoint(self, payload: Buffer, step: int) -> None:
        start = time.monotonic()
        self.stats.checkpoints_started += 1
        self._wait_pending()  # one checkpoint at a time (like CheckFreq)
        # Snapshot into the reused staging buffer (the one copy), then
        # stream a view of it — no per-checkpoint bytes materialization.
        view = as_view(payload)
        if len(view) > len(self._staging):
            self._staging = bytearray(len(view))
        self._staging[: len(view)] = view
        snapshot = memoryview(self._staging)[: len(view)]
        worker = threading.Thread(
            target=self._transfer, args=(snapshot, step), daemon=True,
            name="gemini-transfer",
        )
        self._pending = worker
        worker.start()
        self.stats.add_checkpoint_block(time.monotonic() - start)

    def _transfer(self, payload: memoryview, step: int) -> None:
        try:
            buffer_index = self._store.begin(step)
            self._channel.send(
                payload,
                lambda offset, chunk: self._store.receive(
                    buffer_index, offset, chunk
                ),
            )
            self._store.commit(buffer_index)
            with self._lock:
                self._latest_step = step
                self.stats.checkpoints_completed += 1
        except BaseException as exc:  # noqa: BLE001 - surfaced on next call
            with self._lock:
                self._error = exc

    def _wait_pending(self) -> None:
        pending = self._pending
        if pending is not None:
            pending.join()
            self._pending = None
        with self._lock:
            if self._error is not None:
                error, self._error = self._error, None
                raise error

    def drain(self) -> None:
        self._wait_pending()

    def latest_recoverable_step(self) -> Optional[int]:
        with self._lock:
            return self._latest_step

    def recover(self) -> Tuple[int, bytes]:
        """Fetch the newest checkpoint back from the remote peer."""
        return self._store.latest()

    def close(self) -> None:
        self.drain()
