"""The CheckFreq baseline (Mohan et al., FAST'21) — Figure 4 semantics.

CheckFreq splits a checkpoint into a *snapshot* phase (copy the state to
DRAM) and a *persist* phase (flush DRAM to storage), and overlaps the
persist with subsequent training.  Its defining limitation, which PCcheck
removes, is **one checkpoint at a time**: a new snapshot cannot start
until the previous persist finished, so at high checkpoint frequency the
training thread stalls waiting (the C₂-after-P₁ gap in Figure 4).

Implementation: the training thread copies the payload into a DRAM
staging buffer inline (the snapshot — this is also the ``before_update``
consistency point, trivially satisfied because the copy is synchronous),
then hands it to a single background persist worker.  ``checkpoint()``
blocks while the worker is still busy with the previous checkpoint.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.baselines.base import CheckpointStrategy
from repro.core.engine import CheckpointEngine
from repro.core.layout import DeviceLayout
from repro.errors import OutOfSpaceError
from repro.storage.device import Buffer, PersistentDevice, as_view


class CheckFreqStrategy(CheckpointStrategy):
    """Snapshot-then-persist with a single in-flight checkpoint."""

    name = "checkfreq"

    def __init__(
        self, device: PersistentDevice, payload_capacity: int, writer_threads: int = 1
    ) -> None:
        super().__init__()
        from repro.core.meta import RECORD_SIZE

        self._layout = DeviceLayout.format(
            device, num_slots=2, slot_size=payload_capacity + RECORD_SIZE
        )
        self._engine = CheckpointEngine(self._layout, writer_threads=writer_threads)
        self._latest_step: Optional[int] = None
        # One pinned staging area reused for every snapshot: the strategy
        # allows a single in-flight checkpoint, and checkpoint() joins the
        # previous persist before re-filling it, so reuse is race-free.
        self._staging = bytearray(payload_capacity)
        self._pending: Optional[threading.Thread] = None
        self._error: Optional[BaseException] = None
        self._lock = threading.Lock()

    @property
    def layout(self) -> DeviceLayout:
        """The on-device region (for recovery in tests and examples)."""
        return self._layout

    def checkpoint(self, payload: Buffer, step: int) -> None:
        start = time.monotonic()
        self.stats.checkpoints_started += 1
        # The defining stall: wait for the previous persist to finish.
        self._wait_pending()
        # Snapshot phase: copy into the reused DRAM staging buffer — the
        # one copy of the path; training may resume after this.  The
        # persist worker gets a view of the staged prefix, not a fresh
        # bytes object.
        view = as_view(payload)
        if len(view) > len(self._staging):
            raise OutOfSpaceError(
                f"payload of {len(view)} bytes exceeds staging capacity "
                f"{len(self._staging)}"
            )
        self._staging[: len(view)] = view
        snapshot = memoryview(self._staging)[: len(view)]
        worker = threading.Thread(
            target=self._persist, args=(snapshot, step), daemon=True,
            name="checkfreq-persist",
        )
        self._pending = worker
        worker.start()
        self.stats.add_checkpoint_block(time.monotonic() - start)

    def _persist(self, snapshot: memoryview, step: int) -> None:
        try:
            result = self._engine.checkpoint(snapshot, step=step)
            with self._lock:
                if result.committed:
                    self._latest_step = step
                self.stats.checkpoints_completed += 1
        except BaseException as exc:  # noqa: BLE001 - surfaced on next call
            with self._lock:
                self._error = exc

    def _wait_pending(self) -> None:
        pending = self._pending
        if pending is not None:
            pending.join()
            self._pending = None
        with self._lock:
            if self._error is not None:
                error, self._error = self._error, None
                raise error

    def drain(self) -> None:
        self._wait_pending()

    def latest_recoverable_step(self) -> Optional[int]:
        with self._lock:
            return self._latest_step

    def close(self) -> None:
        self.drain()
        self._engine.close()
