"""Functional checkpoint strategies: PCcheck and the paper's baselines."""

from repro.baselines.base import CheckpointStrategy, StrategyStats
from repro.baselines.checkfreq import CheckFreqStrategy
from repro.baselines.gemini import GeminiStrategy, NetworkChannel, RemoteMemoryStore
from repro.baselines.gpm import GPMStrategy
from repro.baselines.naive import NaiveStrategy
from repro.baselines.pccheck import PCcheckStrategy
from repro.baselines.registry import (
    STRATEGY_CLASSES,
    available_strategies,
    build_strategy,
    required_capacity,
)

__all__ = [
    "STRATEGY_CLASSES",
    "CheckFreqStrategy",
    "CheckpointStrategy",
    "GPMStrategy",
    "GeminiStrategy",
    "NaiveStrategy",
    "NetworkChannel",
    "RemoteMemoryStore",
    "PCcheckStrategy",
    "StrategyStats",
    "available_strategies",
    "build_strategy",
    "required_capacity",
]
