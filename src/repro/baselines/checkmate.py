"""A functional Checkmate-style gradient-replication baseline.

Checkmate (PAPERS.md) sidesteps persistent storage entirely: instead of
writing checkpoints to disk, each worker *replicates* its update state
to the DRAM of R peer accelerators every iteration.  Any single failure
is recovered from a surviving replica; nothing ever hits storage, so
the hot path pays network bandwidth only ("zero persist").

The functional model reuses Gemini's moving parts — a
:class:`~repro.baselines.gemini.RemoteMemoryStore` per replica peer and
a bandwidth-throttled :class:`~repro.baselines.gemini.NetworkChannel` —
but broadcasts each checkpoint to **all** R replicas in one in-flight
transfer and commits the step once a quorum (majority) of replicas
holds a complete copy.  :meth:`CheckmateStrategy.fail_replica` downs a
peer; :meth:`CheckmateStrategy.recover` returns the newest checkpoint
any surviving replica still holds.

Because Checkmate replicates every iteration, the interesting contrast
with Gemini is *what* crosses the network: Gemini ships full model +
optimizer state per checkpoint, Checkmate only the freshly produced
update (the sim models this as :data:`repro.sim.strategies.checkmate.
GRADIENT_FRACTION` of the state).  The functional baseline keeps the
full payload so recovery is byte-exact and comparable across
strategies.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional, Tuple

from repro.baselines.base import CheckpointStrategy
from repro.baselines.gemini import NetworkChannel, RemoteMemoryStore
from repro.errors import ConfigError, NoCheckpointError
from repro.storage.device import Buffer, as_view


class CheckmateStrategy(CheckpointStrategy):
    """Replicate checkpoints to R peer memories; commit on quorum."""

    name = "checkmate"

    def __init__(
        self,
        capacity: int,
        replicas: int = 2,
        channel: Optional[NetworkChannel] = None,
    ) -> None:
        super().__init__()
        if replicas < 1:
            raise ConfigError(f"need at least 1 replica, got {replicas}")
        self._stores: List[RemoteMemoryStore] = [
            RemoteMemoryStore(capacity) for _ in range(replicas)
        ]
        self._alive = [True] * replicas
        self._channel = channel or NetworkChannel()
        self._quorum = replicas // 2 + 1
        # One broadcast in flight at a time; the staging buffer is reused
        # (checkpoint() joins the previous transfer before refilling).
        self._staging = bytearray()
        self._pending: Optional[threading.Thread] = None
        self._error: Optional[BaseException] = None
        self._latest_step: Optional[int] = None
        self._lock = threading.Lock()

    @property
    def replicas(self) -> int:
        """Peer memories this strategy replicates into."""
        return len(self._stores)

    @property
    def stores(self) -> List[RemoteMemoryStore]:
        """The replica memories (tests inspect/fail them directly)."""
        return self._stores

    def fail_replica(self, index: int) -> None:
        """Down one peer: its replica memory is lost until re-replication."""
        self._stores[index].fail()
        with self._lock:
            self._alive[index] = False

    def restore_replica(self, index: int) -> None:
        """Bring a failed peer back (empty; refilled by the next commit)."""
        with self._lock:
            self._alive[index] = True

    # ------------------------------------------------------------------
    # CheckpointStrategy interface

    def checkpoint(self, payload: Buffer, step: int) -> None:
        start = time.monotonic()
        self.stats.checkpoints_started += 1
        self._wait_pending()
        view = as_view(payload)
        if len(view) > len(self._staging):
            self._staging = bytearray(len(view))
        self._staging[: len(view)] = view
        snapshot = memoryview(self._staging)[: len(view)]
        worker = threading.Thread(
            target=self._broadcast, args=(snapshot, step), daemon=True,
            name="checkmate-broadcast",
        )
        self._pending = worker
        worker.start()
        self.stats.add_checkpoint_block(time.monotonic() - start)

    def _broadcast(self, payload: memoryview, step: int) -> None:
        try:
            complete = 0
            for index, store in enumerate(self._stores):
                with self._lock:
                    if not self._alive[index]:
                        continue
                buffer_index = store.begin(step)
                self._channel.send(
                    payload,
                    lambda offset, chunk, s=store, b=buffer_index: s.receive(
                        b, offset, chunk
                    ),
                )
                store.commit(buffer_index)
                complete += 1
            if complete < self._quorum:
                raise NoCheckpointError(
                    f"step {step} reached only {complete} of "
                    f"{len(self._stores)} replicas (quorum {self._quorum})"
                )
            with self._lock:
                self._latest_step = step
                self.stats.checkpoints_completed += 1
        except BaseException as exc:  # noqa: BLE001 - surfaced on next call
            with self._lock:
                self._error = exc

    def _wait_pending(self) -> None:
        pending = self._pending
        if pending is not None:
            pending.join()
            self._pending = None
        with self._lock:
            if self._error is not None:
                error, self._error = self._error, None
                raise error

    def drain(self) -> None:
        self._wait_pending()

    def latest_recoverable_step(self) -> Optional[int]:
        with self._lock:
            return self._latest_step

    def recover(self) -> Tuple[int, bytes]:
        """The newest checkpoint any surviving replica holds."""
        best: Optional[Tuple[int, bytes]] = None
        for store in self._stores:
            try:
                step, payload = store.latest()
            except NoCheckpointError:
                continue
            if best is None or step > best[0]:
                best = (step, payload)
        if best is None:
            raise NoCheckpointError("no replica holds a checkpoint")
        return best

    def close(self) -> None:
        self.drain()
