"""The checkpoint-strategy interface the training loop drives.

Every strategy — PCcheck and the baselines it is compared against —
plugs into the :class:`~repro.training.loop.Trainer` through two hooks:

``before_update()``
    Called immediately before the optimizer update (the T→U boundary of
    Figure 6).  A strategy that snapshots asynchronously blocks here
    until in-flight snapshots captured a consistent state; synchronous
    strategies no-op.

``checkpoint(payload, step)``
    Called at each checkpoint boundary with the serialized training
    state.  Blocking behaviour is the strategy's defining property:
    the traditional baseline blocks through copy+persist, CheckFreq
    blocks only while the *previous* checkpoint is still persisting,
    GPM blocks through its direct persist, and PCcheck (§3) almost
    never blocks thanks to concurrent checkpoints.

Strategies also expose stall accounting so benchmarks can attribute
training slowdown to checkpointing.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from typing import Optional


class StrategyStats:
    """Time a strategy spent blocking the training thread."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.checkpoint_block_seconds = 0.0
        self.update_block_seconds = 0.0
        self.checkpoints_started = 0
        self.checkpoints_completed = 0

    def add_checkpoint_block(self, seconds: float) -> None:
        with self._lock:
            self.checkpoint_block_seconds += seconds

    def add_update_block(self, seconds: float) -> None:
        with self._lock:
            self.update_block_seconds += seconds

    @property
    def total_stall_seconds(self) -> float:
        """All training-thread time lost to checkpointing."""
        with self._lock:
            return self.checkpoint_block_seconds + self.update_block_seconds


class CheckpointStrategy(ABC):
    """Base class for functional checkpoint strategies."""

    #: Short identifier used by the registry and result tables.
    name: str = "base"

    def __init__(self) -> None:
        self.stats = StrategyStats()

    def before_update(self) -> None:
        """Block until pending snapshots are consistent (default: no-op)."""

    @abstractmethod
    def checkpoint(self, payload: bytes, step: int) -> None:
        """Persist (or schedule persisting) ``payload`` for ``step``."""

    def drain(self) -> None:
        """Wait for all scheduled checkpoints to finish (default: no-op)."""

    def close(self) -> None:
        """Release resources; :meth:`drain` first if needed."""

    def latest_recoverable_step(self) -> Optional[int]:
        """Step of the newest durably committed checkpoint, if known."""
        return None

    def __enter__(self) -> "CheckpointStrategy":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
