"""The GPM baseline (Pandey et al., ASPLOS'22).

GPM persists GPU state to PMEM (or, in the paper's extension, to an
mmapped SSD file) using GPU *copy kernels* through UVM — no intermediate
DRAM staging — and **stalls training for the whole persist**: the GPU's
compute is occupied by the copy kernels and the checkpoint must be
durable before the next iteration proceeds (``cudaDeviceSynchronize`` +
``msync`` in the paper's SSD adaptation).

Functionally that makes GPM a synchronous direct-write strategy.  It
differs from :class:`~repro.baselines.naive.NaiveStrategy` in the data
path it models: no DRAM copy phase, a single writer stream (copy kernels
serialise on the PCIe link), and persistence via one barrier at the end.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.baselines.base import CheckpointStrategy
from repro.core.engine import CheckpointEngine
from repro.core.layout import DeviceLayout
from repro.storage.device import PersistentDevice


class GPMStrategy(CheckpointStrategy):
    """Stall-and-persist directly to the device (UVM-style)."""

    name = "gpm"

    def __init__(self, device: PersistentDevice, payload_capacity: int) -> None:
        super().__init__()
        from repro.core.meta import RECORD_SIZE

        self._layout = DeviceLayout.format(
            device, num_slots=2, slot_size=payload_capacity + RECORD_SIZE
        )
        # One writer thread: GPM's copy kernels stream over a single
        # GPU-device mapping rather than parallel CPU writers.
        self._engine = CheckpointEngine(self._layout, writer_threads=1)
        self._latest_step: Optional[int] = None

    @property
    def layout(self) -> DeviceLayout:
        """The on-device region (for recovery in tests and examples)."""
        return self._layout

    def checkpoint(self, payload: bytes, step: int) -> None:
        start = time.monotonic()
        self.stats.checkpoints_started += 1
        result = self._engine.checkpoint(payload, step=step)
        if result.committed:
            self._latest_step = step
        self.stats.checkpoints_completed += 1
        self.stats.add_checkpoint_block(time.monotonic() - start)

    def latest_recoverable_step(self) -> Optional[int]:
        return self._latest_step

    def close(self) -> None:
        self._engine.close()
