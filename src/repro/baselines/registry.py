"""Strategy registry: build any functional strategy by name.

Used by the examples and functional benchmarks to sweep strategies the
way the paper's Figure 8 does.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.baselines.base import CheckpointStrategy
from repro.baselines.checkfreq import CheckFreqStrategy
from repro.baselines.gpm import GPMStrategy
from repro.baselines.naive import NaiveStrategy
from repro.baselines.pccheck import PCcheckStrategy
from repro.core.config import PCcheckConfig
from repro.core.layout import Geometry
from repro.core.meta import RECORD_SIZE
from repro.errors import ConfigError
from repro.storage.device import PersistentDevice

#: A device factory receives the required capacity and returns a device.
DeviceFactory = Callable[[int], PersistentDevice]


def required_capacity(name: str, payload_capacity: int,
                      config: Optional[PCcheckConfig] = None) -> int:
    """Device bytes a strategy needs for checkpoints of ``payload_capacity``."""
    slot_size = payload_capacity + RECORD_SIZE
    if name == "pccheck":
        slots = (config or PCcheckConfig()).num_slots
    else:
        slots = 2
    return Geometry(num_slots=slots, slot_size=slot_size).total_size


def build_strategy(
    name: str,
    device_factory: DeviceFactory,
    payload_capacity: int,
    config: Optional[PCcheckConfig] = None,
    writer_threads: int = 1,
) -> CheckpointStrategy:
    """Construct a functional strategy with a right-sized device."""
    capacity = required_capacity(name, payload_capacity, config)
    device = device_factory(capacity)
    if name == "naive":
        return NaiveStrategy(device, payload_capacity, writer_threads=writer_threads)
    if name == "checkfreq":
        return CheckFreqStrategy(
            device, payload_capacity, writer_threads=writer_threads
        )
    if name == "gpm":
        return GPMStrategy(device, payload_capacity)
    if name == "pccheck":
        return PCcheckStrategy(device, payload_capacity, config=config)
    raise ConfigError(
        f"unknown strategy {name!r}; available: {available_strategies()}"
    )


def available_strategies() -> List[str]:
    """Names accepted by :func:`build_strategy`."""
    return ["naive", "checkfreq", "gpm", "pccheck"]


STRATEGY_CLASSES: Dict[str, type] = {
    "naive": NaiveStrategy,
    "checkfreq": CheckFreqStrategy,
    "gpm": GPMStrategy,
    "pccheck": PCcheckStrategy,
}
