"""Functional-strategy registry — thin view over :mod:`repro.strategies`.

Used by the examples and functional benchmarks to sweep strategies the
way the paper's Figure 8 does.  The canonical table lives in
:mod:`repro.strategies`; this module keeps the historical import
surface (``build_strategy``, ``required_capacity``,
``available_strategies``, ``STRATEGY_CLASSES``) working.
"""

from __future__ import annotations

from typing import Dict, List

from repro.strategies import (
    REGISTRY,
    DeviceFactory,
    build_strategy,
    functional_strategies,
    required_capacity,
)

__all__ = [
    "DeviceFactory",
    "STRATEGY_CLASSES",
    "available_strategies",
    "build_strategy",
    "required_capacity",
]


def available_strategies() -> List[str]:
    """Names accepted by :func:`repro.strategies.build_strategy`."""
    return functional_strategies()


STRATEGY_CLASSES: Dict[str, type] = {
    name: entry.functional_class()
    for name, entry in REGISTRY.items()
    if entry.functional
}
