"""Exception hierarchy for the PCcheck reproduction.

All library errors derive from :class:`PCcheckError` so callers can catch a
single base class. Subclasses map to the major subsystems: storage devices,
the checkpoint engine, recovery, configuration, and the performance
simulator.
"""

from __future__ import annotations


class PCcheckError(Exception):
    """Base class for every error raised by this library."""


class StorageError(PCcheckError):
    """A persistent device rejected or failed an operation."""


class DeviceClosedError(StorageError):
    """Operation attempted on a device that was already closed."""


class OutOfSpaceError(StorageError):
    """A write exceeded the capacity of the target device or region."""


class CrashedDeviceError(StorageError):
    """Operation attempted on a device that simulated a crash.

    Fault-injecting devices raise this after :meth:`crash` until the device
    is explicitly recovered, mirroring a machine that lost power.
    """


class TransientIOError(StorageError):
    """An injected transient device fault: the same operation, retried,
    will eventually succeed (a flaky controller, not power loss)."""


class RemoteUnavailableError(StorageError):
    """The remote object store refused service (outage or partition).

    Raised by :class:`~repro.storage.remote.RemoteStore` while it is
    marked unavailable.  Distinct from :class:`CrashedDeviceError`: a
    remote outage is a *liveness* failure of the cold tier — local tiers
    keep committing, the demotion worker counts the failure and retries
    later — whereas a crashed local device kills the commit path."""


class LayoutError(PCcheckError):
    """The on-device region layout is malformed or incompatible."""


class CorruptCheckpointError(PCcheckError):
    """A checkpoint failed validation (bad magic, CRC, or truncation)."""


class NoCheckpointError(PCcheckError):
    """Recovery found no valid checkpoint on the device."""


class EngineError(PCcheckError):
    """The checkpoint engine was used incorrectly or failed internally."""


class EngineClosedError(EngineError):
    """Checkpoint requested on an engine that has been shut down."""


class SlotWaitTimeout(EngineError):
    """``begin()`` gave up waiting for a free checkpoint slot.

    All N concurrent checkpoints were still in flight when the caller's
    timeout expired.  Distinct from other engine errors so pollers (the
    orchestrator's slot-wait loop) can retry it without masking real
    failures.
    """


class InvariantViolationError(EngineError):
    """The runtime sanitizer observed a broken engine invariant.

    Raised only when sanitizing is enabled (``REPRO_SANITIZE=1`` or
    ``CheckpointEngine(..., sanitize=True)``); it means the *engine
    implementation* — not the caller — violated one of the documented
    concurrency invariants (committed-counter monotonicity, committed
    slot outside the free queue, one slot returned per checkpoint,
    at-least-one-valid-checkpoint).
    """


class ConfigError(PCcheckError):
    """Invalid PCcheck configuration (Table 2 parameter constraints)."""


class ServiceError(PCcheckError):
    """The multi-tenant checkpoint service failed or was misused."""


class AdmissionRejected(ServiceError):
    """Admission control refused a request outright.

    The tenant exceeded one of its budgets — concurrent-slot quota with a
    full queue, DRAM staging budget, or payload capacity — and the request
    was dropped *before* touching any engine, so the engine's invariants
    and every other tenant's traffic are unaffected.  The ``tenant`` and
    ``reason`` attributes identify which budget fired.
    """

    def __init__(self, message: str, *, tenant: str = "", reason: str = "") -> None:
        super().__init__(message)
        self.tenant = tenant
        self.reason = reason


class ServiceSaturated(AdmissionRejected):
    """The *shared* capacity is exhausted, not a per-tenant budget.

    Raised when storage bandwidth is saturated end to end: every pooled
    engine is leased (or the coalescing batch region is full) and the
    bounded queue is at its limit, so backpressure reaches the caller.
    Distinct from its :class:`AdmissionRejected` base so tenants can tell
    "slow down, the fleet is busy" apart from "you exceeded your quota".
    """


class SimulationError(PCcheckError):
    """The discrete-event simulator reached an inconsistent state."""


class TrainingError(PCcheckError):
    """The miniature training substrate was used incorrectly."""


class DistributedError(PCcheckError):
    """Multi-worker checkpoint coordination failed."""


class DistributedTimeoutError(DistributedError):
    """A coordination round timed out: some rank never reported its
    checkpoint, so the step can never become globally consistent.

    The round is marked *failed* for every participant — a straggler
    arriving later is rejected rather than silently advancing
    ``peer_check`` for a round its peers already abandoned — and the
    superseded slots held across the round are reclaimed once the group
    agrees it is dead.
    """


class DegradedGroupError(DistributedError):
    """Checkpointing is suspended: the worker group is degraded.

    Raised for new checkpoint requests after a coordination round
    failed (a peer timed out or died).  The group must be re-formed via
    :meth:`repro.core.distributed.DistributedCoordinator.reform` before
    checkpointing resumes; local recovery data stays intact throughout.
    """
